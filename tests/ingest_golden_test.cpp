// Golden-fixture regression test: a small deterministic MRT fixture
// (built by mrt::Writer — identical bytes on every platform and run) is
// pushed through the full pipelined ingestion engine, and the resulting
// cleaned stream is reduced to an FNV-1a digest over a canonical text
// rendering. The digest, the cleaning report, and the IngestStats are
// pinned as constants: ANY future change to framing, decode, sharding,
// cleaning, or the merge that alters the output — bytes, order, or
// counters — fails this test loudly instead of drifting silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "mrt/mrt.h"

namespace bgpcc::core {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

/// The canonical one-line rendering of an UpdateRecord: every field that
/// the ingestion contract promises to preserve.
std::string render(const UpdateRecord& record) {
  std::ostringstream line;
  line << record.time.unix_micros() << '|' << record.session.to_string() << '|'
       << record.prefix.to_string() << '|'
       << (record.announcement ? 'A' : 'W') << '|'
       << record.attrs.as_path.to_string() << '|'
       << record.attrs.next_hop.to_string() << '|'
       << record.attrs.communities.to_string() << '\n';
  return line.str();
}

std::uint64_t stream_digest(const UpdateStream& stream) {
  std::uint64_t hash = kFnvOffset;
  for (const UpdateRecord& record : stream.records()) {
    hash = fnv1a(hash, render(record));
  }
  return hash;
}

UpdateMessage announce(std::initializer_list<const char*> prefixes,
                       std::initializer_list<std::uint32_t> path,
                       int community = -1) {
  UpdateMessage update;
  for (const char* p : prefixes) {
    update.announced.push_back(Prefix::from_string(p));
  }
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence(path);
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  if (community >= 0) {
    attrs.communities.add(
        Community::of(65100, static_cast<std::uint16_t>(community)));
  }
  update.attrs = std::move(attrs);
  return update;
}

UpdateMessage withdraw(std::initializer_list<const char*> prefixes) {
  UpdateMessage update;
  for (const char* p : prefixes) {
    update.withdrawn.push_back(Prefix::from_string(p));
  }
  return update;
}

void write_update(mrt::Writer& writer, Timestamp when, Asn peer_asn,
                  const IpAddress& peer_ip, const UpdateMessage& update,
                  bool extended_time, bool as4 = true) {
  CodecOptions codec;
  codec.four_byte_asn = as4;
  mrt::Bgp4mpMessage message;
  message.peer_asn = peer_asn;
  message.local_asn = Asn(64512);
  message.peer_ip = peer_ip;
  message.local_ip = IpAddress::from_string("203.0.113.1");
  message.bgp_message = encode_update(update, codec);
  writer.write_message(when, message, extended_time, as4);
}

/// The checked-in fixture: 3 sessions (one a route server, one legacy
/// two-octet), same-second bursts, a real-microsecond stamp, one
/// unallocated ASN, one unallocated prefix, one state change, one
/// withdrawal — every cleaning kernel and every decode variant on one
/// small deterministic archive.
std::string golden_archive() {
  IpAddress peer_a = IpAddress::from_string("10.0.0.1");
  IpAddress peer_b = IpAddress::from_string("10.0.0.2");
  IpAddress peer_rs = IpAddress::from_string("10.0.0.9");
  Timestamp t0 = Timestamp::from_unix_seconds(1600000000);

  std::ostringstream out;
  mrt::Writer writer(out);
  for (int burst = 0; burst < 6; ++burst) {
    Timestamp t = t0 + Duration::seconds(burst);
    write_update(writer, t, Asn(65001), peer_a,
                 announce({"10.1.0.0/16", "10.2.0.0/16"}, {65001, 65100},
                          burst),
                 /*extended_time=*/false);
    write_update(writer, t, Asn(65002), peer_b,
                 announce({"10.3.0.0/16"}, {65002, 65100}),
                 /*extended_time=*/false, /*as4=*/false);
    write_update(writer, t, Asn(65001), peer_a, withdraw({"10.1.0.0/16"}),
                 /*extended_time=*/false);
    write_update(writer, t, Asn(65010), peer_rs,
                 announce({"10.5.0.0/16"}, {65300, 65100}),
                 /*extended_time=*/true);
    write_update(writer, t + Duration::micros(250000), Asn(65001), peer_a,
                 announce({"10.6.0.0/16"}, {65001, 65200}, 40 + burst),
                 /*extended_time=*/true);
    write_update(writer, t, Asn(65002), peer_b,
                 announce({"10.7.0.0/16"}, {65002, 65999}),
                 /*extended_time=*/false);
    write_update(writer, t, Asn(65001), peer_a,
                 announce({"192.168.0.0/24"}, {65001, 65100}),
                 /*extended_time=*/false);
    mrt::Bgp4mpStateChange change;
    change.peer_asn = Asn(65001);
    change.local_asn = Asn(64512);
    change.peer_ip = peer_a;
    change.local_ip = IpAddress::from_string("203.0.113.1");
    change.old_state = mrt::FsmState::kEstablished;
    change.new_state = mrt::FsmState::kIdle;
    writer.write_state_change(t, change);
  }
  return out.str();
}

// ---- The goldens. Regenerate ONLY for an intentional, reviewed change
// ---- to the output contract (the failure message prints actuals).
constexpr std::uint64_t kGoldenArchiveDigest = 7370499679805548087ULL;
constexpr std::uint64_t kGoldenStreamDigest = 9609206843143481846ULL;
constexpr std::size_t kGoldenRawRecords = 48;
constexpr std::size_t kGoldenUpdateMessages = 42;
constexpr std::size_t kGoldenRecords = 48;
constexpr std::size_t kGoldenStreamSize = 36;
constexpr std::size_t kGoldenDroppedAsn = 6;
constexpr std::size_t kGoldenDroppedPrefix = 6;
constexpr std::size_t kGoldenPathsRepaired = 6;
constexpr std::size_t kGoldenTimestampsAdjusted = 12;

TEST(IngestGolden, ArchiveBytesAreStable) {
  EXPECT_EQ(fnv1a(kFnvOffset, golden_archive()), kGoldenArchiveDigest);
}

TEST(IngestGolden, CleanedStreamMatchesGolden) {
  Registry registry;
  for (std::uint32_t asn :
       {65001u, 65002u, 65010u, 65100u, 65200u, 65300u}) {
    registry.allocate_asn(Asn(asn));
  }
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));
  CleaningOptions cleaning;
  cleaning.registry = &registry;
  cleaning.route_servers.emplace_back(IpAddress::from_string("10.0.0.9"),
                                      Asn(65010));

  IngestOptions options;
  options.num_threads = 1;
  options.chunk_records = 8;
  options.cleaning = &cleaning;
  std::istringstream in(golden_archive());
  IngestResult result = ingest_mrt_stream("rrc00", in, options);

  EXPECT_EQ(stream_digest(result.stream), kGoldenStreamDigest);
  EXPECT_EQ(result.stream.size(), kGoldenStreamSize);
  EXPECT_EQ(result.stats.raw_records, kGoldenRawRecords);
  EXPECT_EQ(result.stats.update_messages, kGoldenUpdateMessages);
  EXPECT_EQ(result.stats.records, kGoldenRecords);
  EXPECT_EQ(result.stats.files, 1u);
  EXPECT_EQ(result.cleaning.dropped_unallocated_asn, kGoldenDroppedAsn);
  EXPECT_EQ(result.cleaning.dropped_unallocated_prefix, kGoldenDroppedPrefix);
  EXPECT_EQ(result.cleaning.route_server_paths_repaired,
            kGoldenPathsRepaired);
  EXPECT_EQ(result.cleaning.timestamps_adjusted, kGoldenTimestampsAdjusted);

  // The golden digest must be schedule-independent: the parallel engine
  // at 4 threads / split across 3 files reproduces it bit-for-bit.
  std::string archive = golden_archive();
  std::size_t third = archive.size() / 3;
  // Splits must fall on record boundaries; re-frame to find them.
  std::vector<std::size_t> boundaries;
  {
    std::istringstream frame_in(archive);
    mrt::Reader reader(frame_in);
    std::size_t consumed = 0;
    while (reader.next()) {
      boundaries.push_back(static_cast<std::size_t>(frame_in.tellg()));
      consumed = boundaries.back();
    }
    ASSERT_EQ(consumed, archive.size());
  }
  std::size_t cut1 = 0;
  std::size_t cut2 = 0;
  for (std::size_t b : boundaries) {
    if (b <= third) cut1 = b;
    if (b <= 2 * third) cut2 = b;
  }
  ASSERT_LT(cut1, cut2);
  std::istringstream in_a(archive.substr(0, cut1));
  std::istringstream in_b(archive.substr(cut1, cut2 - cut1));
  std::istringstream in_c(archive.substr(cut2));
  IngestOptions parallel = options;
  parallel.num_threads = 4;
  parallel.chunk_records = 2;
  IngestResult split_result = ingest_mrt_sources(
      {MrtSource{"rrc00", &in_a}, MrtSource{"rrc00", &in_b},
       MrtSource{"rrc00", &in_c}},
      parallel);
  EXPECT_EQ(stream_digest(split_result.stream), kGoldenStreamDigest);
  EXPECT_TRUE(split_result.stream.records() == result.stream.records());
}

}  // namespace
}  // namespace bgpcc::core
