// Golden-fixture regression test: the shared deterministic MRT fixture
// (tests/golden_fixture.h) is pushed through the full pipelined
// ingestion engine, and the resulting cleaned stream is reduced to an
// FNV-1a digest over a canonical text rendering. The digest, the
// cleaning report, and the IngestStats are pinned as constants: ANY
// future change to framing, decode, sharding, cleaning, or the merge
// that alters the output — bytes, order, or counters — fails this test
// loudly instead of drifting silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "golden_fixture.h"
#include "mrt/mrt.h"

namespace bgpcc::core {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

/// The canonical one-line rendering of an UpdateRecord: every field that
/// the ingestion contract promises to preserve.
std::string render(const UpdateRecord& record) {
  std::ostringstream line;
  line << record.time.unix_micros() << '|' << record.session.to_string() << '|'
       << record.prefix.to_string() << '|'
       << (record.announcement ? 'A' : 'W') << '|'
       << record.attrs.as_path.to_string() << '|'
       << record.attrs.next_hop.to_string() << '|'
       << record.attrs.communities.to_string() << '\n';
  return line.str();
}

std::uint64_t stream_digest(const UpdateStream& stream) {
  std::uint64_t hash = kFnvOffset;
  for (const UpdateRecord& record : stream.records()) {
    hash = fnv1a(hash, render(record));
  }
  return hash;
}

// ---- The goldens. Regenerate ONLY for an intentional, reviewed change
// ---- to the output contract (the failure message prints actuals).
constexpr std::uint64_t kGoldenArchiveDigest = 7370499679805548087ULL;
constexpr std::uint64_t kGoldenStreamDigest = 9609206843143481846ULL;
constexpr std::size_t kGoldenRawRecords = 48;
constexpr std::size_t kGoldenUpdateMessages = 42;
constexpr std::size_t kGoldenRecords = 48;
constexpr std::size_t kGoldenStreamSize = 36;
constexpr std::size_t kGoldenDroppedAsn = 6;
constexpr std::size_t kGoldenDroppedPrefix = 6;
constexpr std::size_t kGoldenPathsRepaired = 6;
constexpr std::size_t kGoldenTimestampsAdjusted = 12;

TEST(IngestGolden, ArchiveBytesAreStable) {
  EXPECT_EQ(fnv1a(kFnvOffset, goldenfix::golden_archive()),
            kGoldenArchiveDigest);
}

TEST(IngestGolden, CleanedStreamMatchesGolden) {
  Registry registry = goldenfix::golden_registry();
  CleaningOptions cleaning = goldenfix::golden_cleaning(registry);

  IngestOptions options;
  options.num_threads = 1;
  options.chunk_records = 8;
  options.cleaning = &cleaning;
  std::istringstream in(goldenfix::golden_archive());
  IngestResult result = ingest_mrt_stream("rrc00", in, options);

  EXPECT_EQ(stream_digest(result.stream), kGoldenStreamDigest);
  EXPECT_EQ(result.stream.size(), kGoldenStreamSize);
  EXPECT_EQ(result.stats.raw_records, kGoldenRawRecords);
  EXPECT_EQ(result.stats.update_messages, kGoldenUpdateMessages);
  EXPECT_EQ(result.stats.records, kGoldenRecords);
  EXPECT_EQ(result.stats.files, 1u);
  EXPECT_EQ(result.cleaning.dropped_unallocated_asn, kGoldenDroppedAsn);
  EXPECT_EQ(result.cleaning.dropped_unallocated_prefix, kGoldenDroppedPrefix);
  EXPECT_EQ(result.cleaning.route_server_paths_repaired,
            kGoldenPathsRepaired);
  EXPECT_EQ(result.cleaning.timestamps_adjusted, kGoldenTimestampsAdjusted);

  // The golden digest must be schedule-independent: the parallel engine
  // at 4 threads / split across 3 files reproduces it bit-for-bit.
  std::string archive = goldenfix::golden_archive();
  std::size_t third = archive.size() / 3;
  // Splits must fall on record boundaries; re-frame to find them.
  std::vector<std::size_t> boundaries;
  {
    std::istringstream frame_in(archive);
    mrt::Reader reader(frame_in);
    std::size_t consumed = 0;
    while (reader.next()) {
      boundaries.push_back(static_cast<std::size_t>(frame_in.tellg()));
      consumed = boundaries.back();
    }
    ASSERT_EQ(consumed, archive.size());
  }
  std::size_t cut1 = 0;
  std::size_t cut2 = 0;
  for (std::size_t b : boundaries) {
    if (b <= third) cut1 = b;
    if (b <= 2 * third) cut2 = b;
  }
  ASSERT_LT(cut1, cut2);
  std::istringstream in_a(archive.substr(0, cut1));
  std::istringstream in_b(archive.substr(cut1, cut2 - cut1));
  std::istringstream in_c(archive.substr(cut2));
  IngestOptions parallel = options;
  parallel.num_threads = 4;
  parallel.chunk_records = 2;
  IngestResult split_result = ingest_mrt_sources(
      {MrtSource{"rrc00", &in_a}, MrtSource{"rrc00", &in_b},
       MrtSource{"rrc00", &in_c}},
      parallel);
  EXPECT_EQ(stream_digest(split_result.stream), kGoldenStreamDigest);
  EXPECT_TRUE(split_result.stream.records() == result.stream.records());
}

}  // namespace
}  // namespace bgpcc::core
