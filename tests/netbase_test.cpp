// Unit tests: netbase (addresses, prefixes, ASNs, bytes, time).
#include <gtest/gtest.h>

#include "netbase/asn.h"
#include "netbase/bytes.h"
#include "netbase/error.h"
#include "netbase/ip.h"
#include "netbase/prefix.h"
#include "netbase/timeutil.h"

namespace bgpcc {
namespace {

TEST(IpAddress, V4RoundTrip) {
  IpAddress a = IpAddress::from_string("10.1.2.3");
  EXPECT_TRUE(a.is_v4());
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(a.v4_value(), 0x0a010203u);
}

TEST(IpAddress, V4FromHostOrder) {
  EXPECT_EQ(IpAddress::v4(0xc0a80001).to_string(), "192.168.0.1");
  EXPECT_EQ(IpAddress::v4(192, 168, 0, 1), IpAddress::v4(0xc0a80001));
}

TEST(IpAddress, V4Extremes) {
  EXPECT_EQ(IpAddress::from_string("0.0.0.0").to_string(), "0.0.0.0");
  EXPECT_EQ(IpAddress::from_string("255.255.255.255").to_string(),
            "255.255.255.255");
}

TEST(IpAddress, V4Malformed) {
  EXPECT_THROW((void)IpAddress::from_string("10.1.2"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("10.1.2.256"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("10.1.2.3.4"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string(""), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("a.b.c.d"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("10..2.3"), ParseError);
}

TEST(IpAddress, V6RoundTrip) {
  IpAddress a = IpAddress::from_string("2001:db8::1");
  EXPECT_TRUE(a.is_v6());
  EXPECT_EQ(a.to_string(), "2001:db8::1");
}

TEST(IpAddress, V6FullForm) {
  IpAddress a =
      IpAddress::from_string("2001:0db8:0000:0000:0000:0000:0000:0001");
  EXPECT_EQ(a.to_string(), "2001:db8::1");
}

TEST(IpAddress, V6AllZeros) {
  EXPECT_EQ(IpAddress::from_string("::").to_string(), "::");
}

TEST(IpAddress, V6CompressionPicksLongestRun) {
  // Two zero runs; the longer one is compressed.
  IpAddress a = IpAddress::from_string("1:0:0:2:0:0:0:3");
  EXPECT_EQ(a.to_string(), "1:0:0:2::3");
}

TEST(IpAddress, V6TrailingCompression) {
  EXPECT_EQ(IpAddress::from_string("fe80::").to_string(), "fe80::");
}

TEST(IpAddress, V6Malformed) {
  EXPECT_THROW((void)IpAddress::from_string("1:2:3:4:5:6:7"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("1:2:3:4:5:6:7:8:9"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("::1::2"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("1:2:3:4:5:6:7:8::"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("12345::"), ParseError);
  EXPECT_THROW((void)IpAddress::from_string("g::1"), ParseError);
}

TEST(IpAddress, OrderingV4BeforeV6) {
  EXPECT_LT(IpAddress::from_string("255.255.255.255"),
            IpAddress::from_string("::1"));
}

TEST(IpAddress, BitAccess) {
  IpAddress a = IpAddress::v4(0x80000001);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(31));
}

TEST(IpAddress, Masked) {
  IpAddress a = IpAddress::from_string("10.255.255.255");
  EXPECT_EQ(a.masked(8).to_string(), "10.0.0.0");
  EXPECT_EQ(a.masked(32).to_string(), "10.255.255.255");
  EXPECT_EQ(a.masked(0).to_string(), "0.0.0.0");
  EXPECT_EQ(a.masked(12).to_string(), "10.240.0.0");
}

TEST(IpAddress, HashDiffersByFamily) {
  // 10.0.0.0 and the v6 address with the same leading bytes must not
  // collide structurally.
  IpAddress v4 = IpAddress::from_string("10.0.0.0");
  std::array<std::uint8_t, 16> bytes{10, 0, 0, 0};
  IpAddress v6 = IpAddress::v6(bytes);
  EXPECT_NE(v4, v6);
  EXPECT_NE(IpAddressHash{}(v4), IpAddressHash{}(v6));
}

TEST(Prefix, ParseAndCanonicalize) {
  Prefix p = Prefix::from_string("10.1.2.3/8");
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
  EXPECT_EQ(p.length(), 8);
}

TEST(Prefix, ParseErrors) {
  EXPECT_THROW((void)Prefix::from_string("10.0.0.0"), ParseError);
  EXPECT_THROW((void)Prefix::from_string("10.0.0.0/33"), ParseError);
  EXPECT_THROW((void)Prefix::from_string("10.0.0.0/-1"), ParseError);
  EXPECT_THROW((void)Prefix::from_string("10.0.0.0/x"), ParseError);
  EXPECT_THROW((void)Prefix::from_string("2001:db8::/129"), ParseError);
}

TEST(Prefix, ContainsAddress) {
  Prefix p = Prefix::from_string("192.168.0.0/16");
  EXPECT_TRUE(p.contains(IpAddress::from_string("192.168.255.1")));
  EXPECT_FALSE(p.contains(IpAddress::from_string("192.169.0.1")));
  EXPECT_FALSE(p.contains(IpAddress::from_string("2001:db8::1")));
}

TEST(Prefix, ContainsPrefix) {
  Prefix p = Prefix::from_string("10.0.0.0/8");
  EXPECT_TRUE(p.contains(Prefix::from_string("10.1.0.0/16")));
  EXPECT_TRUE(p.contains(Prefix::from_string("10.0.0.0/8")));
  EXPECT_FALSE(p.contains(Prefix::from_string("0.0.0.0/0")));
  EXPECT_FALSE(p.contains(Prefix::from_string("11.0.0.0/16")));
}

TEST(Prefix, DefaultRoute) {
  Prefix p = Prefix::from_string("0.0.0.0/0");
  EXPECT_TRUE(p.contains(IpAddress::from_string("8.8.8.8")));
  EXPECT_EQ(p.to_string(), "0.0.0.0/0");
}

TEST(Prefix, V6) {
  Prefix p = Prefix::from_string("2001:db8::/32");
  EXPECT_TRUE(p.contains(IpAddress::from_string("2001:db8:1::1")));
  EXPECT_FALSE(p.contains(IpAddress::from_string("2001:db9::1")));
  EXPECT_EQ(p.to_string(), "2001:db8::/32");
}

TEST(Prefix, OrderingGeneralFirst) {
  EXPECT_LT(Prefix::from_string("10.0.0.0/8"),
            Prefix::from_string("10.0.0.0/16"));
}

TEST(Asn, Properties) {
  EXPECT_TRUE(Asn(65000).is_2byte());
  EXPECT_FALSE(Asn(200000).is_2byte());
  EXPECT_TRUE(Asn(64512).is_private());
  EXPECT_TRUE(Asn(4200000000u).is_private());
  EXPECT_FALSE(Asn(3356).is_private());
  EXPECT_TRUE(Asn(0).is_reserved());
  EXPECT_TRUE(Asn(23456).is_reserved());
  EXPECT_TRUE(Asn(65535).is_reserved());
  EXPECT_FALSE(Asn(3356).is_reserved());
  EXPECT_EQ(Asn(3356).to_string(), "AS3356");
}

TEST(ByteReader, ReadsBigEndian) {
  std::vector<std::uint8_t> data{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                 0x08};
  ByteReader r({data.data(), data.size()});
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_EQ(r.u32(), 0x03040506u);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.u8(), 0x07);
}

TEST(ByteReader, U64) {
  std::vector<std::uint8_t> data(8, 0);
  data[7] = 42;
  ByteReader r({data.data(), data.size()});
  EXPECT_EQ(r.u64(), 42u);
}

TEST(ByteReader, UnderrunThrows) {
  std::vector<std::uint8_t> data{0x01};
  ByteReader r({data.data(), data.size()});
  EXPECT_THROW((void)r.u16(), DecodeError);
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(ByteReader, SubReaderIsBounded) {
  std::vector<std::uint8_t> data{1, 2, 3, 4};
  ByteReader r({data.data(), data.size()});
  ByteReader sub = r.sub(2);
  EXPECT_EQ(sub.u8(), 1);
  EXPECT_EQ(sub.u8(), 2);
  EXPECT_THROW((void)sub.u8(), DecodeError);
  EXPECT_EQ(r.u8(), 3);
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  std::size_t at = w.placeholder_u16();
  w.u32(0xdeadbeef);
  w.patch_u16(at, 4);
  EXPECT_EQ(w.data()[0], 0x00);
  EXPECT_EQ(w.data()[1], 0x04);
  EXPECT_EQ(to_hex({w.data().data(), w.data().size()}), "0004deadbeef");
}

TEST(Timeutil, DurationArithmetic) {
  EXPECT_EQ(Duration::hours(2).count_micros(), 7200ll * 1000000);
  EXPECT_EQ((Duration::minutes(1) + Duration::seconds(30)).count_micros(),
            90ll * 1000000);
  EXPECT_EQ((Duration::hours(4) * 3).count_micros(),
            Duration::hours(12).count_micros());
}

TEST(Timeutil, TimestampDayArithmetic) {
  // 2020-03-15 02:00:00 UTC.
  Timestamp t = Timestamp::from_unix_seconds(1584230400 + 7200);
  EXPECT_EQ(t.micros_of_day(), Duration::hours(2).count_micros());
  EXPECT_EQ(t.time_of_day_string(), "02:00:00.000000");
}

TEST(Timeutil, TimestampOrdering) {
  Timestamp a = Timestamp::from_unix_seconds(10);
  Timestamp b = a + Duration::micros(1);
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).count_micros(), 1);
}

}  // namespace
}  // namespace bgpcc
