// The shared golden MRT fixture: a small deterministic archive (built by
// mrt::Writer — identical bytes on every platform and run) exercising
// every cleaning kernel and decode variant: 3 sessions (one a route
// server, one legacy two-octet), same-second bursts, a real-microsecond
// stamp, one unallocated ASN, one unallocated prefix, one state change,
// one withdrawal. ingest_golden_test pins the ingestion output over it;
// analytics_test pins the classifier/tomography pass reports over the
// same bytes — one fixture, so the two goldens can never drift apart.
#pragma once

#include <sstream>
#include <string>

#include "bgp/codec.h"
#include "core/registry.h"
#include "core/stream.h"
#include "mrt/mrt.h"

namespace bgpcc::core::goldenfix {

inline UpdateMessage announce(std::initializer_list<const char*> prefixes,
                              std::initializer_list<std::uint32_t> path,
                              int community = -1) {
  UpdateMessage update;
  for (const char* p : prefixes) {
    update.announced.push_back(Prefix::from_string(p));
  }
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence(path);
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  if (community >= 0) {
    attrs.communities.add(
        Community::of(65100, static_cast<std::uint16_t>(community)));
  }
  update.attrs = std::move(attrs);
  return update;
}

inline UpdateMessage withdraw(std::initializer_list<const char*> prefixes) {
  UpdateMessage update;
  for (const char* p : prefixes) {
    update.withdrawn.push_back(Prefix::from_string(p));
  }
  return update;
}

inline void write_update(mrt::Writer& writer, Timestamp when, Asn peer_asn,
                         const IpAddress& peer_ip,
                         const UpdateMessage& update, bool extended_time,
                         bool as4 = true) {
  CodecOptions codec;
  codec.four_byte_asn = as4;
  mrt::Bgp4mpMessage message;
  message.peer_asn = peer_asn;
  message.local_asn = Asn(64512);
  message.peer_ip = peer_ip;
  message.local_ip = IpAddress::from_string("203.0.113.1");
  message.bgp_message = encode_update(update, codec);
  writer.write_message(when, message, extended_time, as4);
}

/// The checked-in archive bytes (see the header comment for the shape).
inline std::string golden_archive() {
  IpAddress peer_a = IpAddress::from_string("10.0.0.1");
  IpAddress peer_b = IpAddress::from_string("10.0.0.2");
  IpAddress peer_rs = IpAddress::from_string("10.0.0.9");
  Timestamp t0 = Timestamp::from_unix_seconds(1600000000);

  std::ostringstream out;
  mrt::Writer writer(out);
  for (int burst = 0; burst < 6; ++burst) {
    Timestamp t = t0 + Duration::seconds(burst);
    write_update(writer, t, Asn(65001), peer_a,
                 announce({"10.1.0.0/16", "10.2.0.0/16"}, {65001, 65100},
                          burst),
                 /*extended_time=*/false);
    write_update(writer, t, Asn(65002), peer_b,
                 announce({"10.3.0.0/16"}, {65002, 65100}),
                 /*extended_time=*/false, /*as4=*/false);
    write_update(writer, t, Asn(65001), peer_a, withdraw({"10.1.0.0/16"}),
                 /*extended_time=*/false);
    write_update(writer, t, Asn(65010), peer_rs,
                 announce({"10.5.0.0/16"}, {65300, 65100}),
                 /*extended_time=*/true);
    write_update(writer, t + Duration::micros(250000), Asn(65001), peer_a,
                 announce({"10.6.0.0/16"}, {65001, 65200}, 40 + burst),
                 /*extended_time=*/true);
    write_update(writer, t, Asn(65002), peer_b,
                 announce({"10.7.0.0/16"}, {65002, 65999}),
                 /*extended_time=*/false);
    write_update(writer, t, Asn(65001), peer_a,
                 announce({"192.168.0.0/24"}, {65001, 65100}),
                 /*extended_time=*/false);
    mrt::Bgp4mpStateChange change;
    change.peer_asn = Asn(65001);
    change.local_asn = Asn(64512);
    change.peer_ip = peer_a;
    change.local_ip = IpAddress::from_string("203.0.113.1");
    change.old_state = mrt::FsmState::kEstablished;
    change.new_state = mrt::FsmState::kIdle;
    writer.write_state_change(t, change);
  }
  return out.str();
}

/// The registry the golden cleaning runs against.
inline Registry golden_registry() {
  Registry registry;
  for (std::uint32_t asn :
       {65001u, 65002u, 65010u, 65100u, 65200u, 65300u}) {
    registry.allocate_asn(Asn(asn));
  }
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));
  return registry;
}

/// The golden cleaning options (registry must outlive the result).
inline CleaningOptions golden_cleaning(const Registry& registry) {
  CleaningOptions cleaning;
  cleaning.registry = &registry;
  cleaning.route_servers.emplace_back(IpAddress::from_string("10.0.0.9"),
                                      Asn(65010));
  return cleaning;
}

}  // namespace bgpcc::core::goldenfix
