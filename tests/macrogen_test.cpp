// Tests: the macro-scale stream generator (Table 1/2, Figure 2/6 scale).
#include <gtest/gtest.h>

#include "synth/macrogen.h"

namespace bgpcc::synth {
namespace {

MacroParams small_params() {
  MacroParams p = MacroParams::march2020(/*volume_scale=*/1.0 / 16384,
                                         /*population_scale=*/1.0 / 512);
  p.sessions = 100;
  p.peers = 40;
  p.collectors = 4;
  return p;
}

TEST(MacroGen, HitsAnnouncementTarget) {
  MacroGen gen(small_params());
  auto result = gen.classify_day();
  EXPECT_GE(result.stats.announcements, gen.params().announcement_target);
  // Not wildly above (bursts overshoot a little).
  EXPECT_LT(result.stats.announcements,
            gen.params().announcement_target + 1000);
}

TEST(MacroGen, TypeSharesMatchPaperShape) {
  // Table 2 *d_mar20: nc+nn > 45%, pc largest, x types ~1%.
  MacroGen gen(small_params());
  auto result = gen.classify_day();
  const core::TypeCounts& t = result.types;
  ASSERT_GT(t.total(), 10000u);

  double nc_nn = t.share(core::AnnouncementType::kNc) +
                 t.share(core::AnnouncementType::kNn);
  EXPECT_GT(nc_nn, 0.40);
  EXPECT_LT(nc_nn, 0.65);

  double pc = t.share(core::AnnouncementType::kPc);
  for (core::AnnouncementType type : core::kAllAnnouncementTypes) {
    EXPECT_GE(pc, t.share(type)) << core::label(type);
  }
  double x = t.share(core::AnnouncementType::kXc) +
             t.share(core::AnnouncementType::kXn);
  EXPECT_LT(x, 0.05);
}

TEST(MacroGen, MostAnnouncementsCarryCommunities) {
  // Table 1: 737M of 1008M announcements carry communities (~73%).
  MacroGen gen(small_params());
  auto result = gen.classify_day();
  double fraction = static_cast<double>(result.stats.with_communities) /
                    static_cast<double>(result.stats.announcements);
  EXPECT_GT(fraction, 0.55);
  EXPECT_LT(fraction, 0.92);
}

TEST(MacroGen, WithdrawalsAreSmallFraction) {
  // Table 1: 38.5M withdrawals vs 1008M announcements (~4%).
  MacroGen gen(small_params());
  auto result = gen.classify_day();
  double ratio = static_cast<double>(result.stats.withdrawals) /
                 static_cast<double>(result.stats.announcements);
  EXPECT_GT(ratio, 0.005);
  EXPECT_LT(ratio, 0.15);
}

TEST(MacroGen, DeterministicWithSameSeed) {
  auto run = [] {
    MacroParams p = small_params();
    p.announcement_target = 5000;
    MacroGen gen(p);
    auto result = gen.classify_day();
    return std::make_tuple(result.stats.announcements,
                           result.stats.withdrawals,
                           result.stats.unique_paths.size(),
                           result.types.count(core::AnnouncementType::kNc));
  };
  EXPECT_EQ(run(), run());
}

TEST(MacroGen, DifferentSeedsDiffer) {
  MacroParams a = small_params();
  a.announcement_target = 5000;
  MacroParams b = a;
  b.seed = a.seed + 1;
  auto result_a = MacroGen(a).classify_day();
  auto result_b = MacroGen(b).classify_day();
  EXPECT_NE(result_a.types.count(core::AnnouncementType::kPc),
            result_b.types.count(core::AnnouncementType::kPc));
}

TEST(MacroGen, StreamsAreChronologicalPerSessionPrefix) {
  MacroParams p = small_params();
  p.announcement_target = 20000;
  MacroGen gen(p);
  std::map<std::pair<core::SessionKey, Prefix>, Timestamp> last;
  gen.generate_day([&](const core::UpdateRecord& record) {
    auto key = std::make_pair(record.session, record.prefix);
    auto it = last.find(key);
    if (it != last.end()) {
      ASSERT_GE(record.time, it->second)
          << "stream must be chronological per (session, prefix)";
    }
    last[key] = record.time;
  });
}

TEST(MacroGen, NnArtifactBoostsDuplicates) {
  MacroParams base = small_params();
  base.announcement_target = 20000;
  MacroParams spiked = base;
  spiked.nn_artifact = true;
  auto plain = MacroGen(base).classify_day();
  auto artifact = MacroGen(spiked).classify_day();
  EXPECT_GT(artifact.types.count(core::AnnouncementType::kNn),
            plain.types.count(core::AnnouncementType::kNn) +
                base.announcement_target / 10);
}

TEST(MacroGen, GrowthModelMonotone) {
  MacroParams y2010 = MacroParams::for_sample(2010, 0);
  MacroParams y2020 = MacroParams::for_sample(2020, 0);
  EXPECT_LT(y2010.sessions, y2020.sessions);
  EXPECT_LT(y2010.peers, y2020.peers);
  EXPECT_LT(y2010.tagged_route_fraction, y2020.tagged_route_fraction);
  EXPECT_LT(y2010.announcement_target * 2, y2020.announcement_target);
  // The 2012 artifact is flagged exactly there.
  EXPECT_TRUE(MacroParams::for_sample(2012, 1).nn_artifact);
  EXPECT_FALSE(MacroParams::for_sample(2013, 1).nn_artifact);
}

TEST(MacroGen, SecondGranularitySessionsProduceWholeSeconds) {
  MacroParams p = small_params();
  p.announcement_target = 5000;
  p.second_granularity_fraction = 1.0;
  bool all_whole = true;
  MacroGen(p).generate_day([&](const core::UpdateRecord& record) {
    if (record.time.unix_micros() % 1000000 != 0) all_whole = false;
  });
  EXPECT_TRUE(all_whole);
}

}  // namespace
}  // namespace bgpcc::synth
