// End-to-end test of the bgpcc-merge binary (tools/bgpcc_merge.cpp):
// per-collector `ingest` runs fanned in with `merge` must print
// BYTE-IDENTICAL reports to a monolithic run over every archive at
// once — the split-run workflow the wire codec exists for, proven
// against the real executable's stdout, not a library shortcut.
//
// The tool's path arrives via the BGPCC_MERGE_TOOL compile definition
// (see tests/CMakeLists.txt); commands run through std::system with
// stdout redirected into the test's temp directory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "archive_gen.h"

namespace bgpcc {
namespace {

using core::archgen::ArchiveGenerator;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "bgpcc_merge_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int run_tool(const std::string& args, const std::string& stdout_path) {
  std::string command = std::string(BGPCC_MERGE_TOOL) + " " + args + " > " +
                        stdout_path + " 2> " + stdout_path + ".err";
  int status = std::system(command.c_str());
  return status;
}

class MergeToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ArchiveGenerator gen_a(424200);
    ArchiveGenerator gen_b(424201);
    archive_a_ = temp_path("a.mrt");
    archive_b_ = temp_path("b.mrt");
    write_file(archive_a_, gen_a.generate(500));
    write_file(archive_b_, gen_b.generate(400));
  }

  std::string archive_a_;
  std::string archive_b_;
};

TEST_F(MergeToolTest, SplitIngestMergeEqualsMonolithicRun) {
  // Monolithic: both collectors in one ingest.
  std::string mono_state = temp_path("mono.state");
  ASSERT_EQ(run_tool("ingest " + mono_state + " rrc00=" + archive_a_ +
                         " rrc01=" + archive_b_,
                     temp_path("mono_ingest.out")),
            0);
  std::string mono_out = temp_path("mono.out");
  ASSERT_EQ(run_tool("merge " + mono_state, mono_out), 0);

  // Split: one ingest per collector, then fan-in.
  std::string state_a = temp_path("a.state");
  std::string state_b = temp_path("b.state");
  ASSERT_EQ(run_tool("ingest " + state_a + " rrc00=" + archive_a_,
                     temp_path("a_ingest.out")),
            0);
  ASSERT_EQ(run_tool("ingest " + state_b + " rrc01=" + archive_b_,
                     temp_path("b_ingest.out")),
            0);
  std::string split_out = temp_path("split.out");
  ASSERT_EQ(run_tool("merge " + state_a + " " + state_b, split_out), 0);

  std::string mono_report = read_file(mono_out);
  std::string split_report = read_file(split_out);
  ASSERT_FALSE(mono_report.empty());
  EXPECT_NE(mono_report.find("== announcement types =="), std::string::npos);
  EXPECT_NE(mono_report.find("== community usage"), std::string::npos);
  EXPECT_EQ(split_report, mono_report);
}

TEST_F(MergeToolTest, ChainedSaveMergesAssociatively) {
  std::string state_a = temp_path("chain_a.state");
  std::string state_b = temp_path("chain_b.state");
  ASSERT_EQ(run_tool("ingest " + state_a + " rrc00=" + archive_a_,
                     temp_path("chain_a.out")),
            0);
  ASSERT_EQ(run_tool("ingest " + state_b + " rrc01=" + archive_b_,
                     temp_path("chain_b.out")),
            0);

  // (a ⊕ b) saved, then re-merged alone, equals merging a and b directly.
  std::string combined = temp_path("chain_ab.state");
  std::string direct_out = temp_path("chain_direct.out");
  ASSERT_EQ(run_tool("merge --save " + combined + " " + state_a + " " +
                         state_b,
                     direct_out),
            0);
  std::string chained_out = temp_path("chain_again.out");
  ASSERT_EQ(run_tool("merge " + combined, chained_out), 0);
  EXPECT_EQ(read_file(chained_out), read_file(direct_out));
}

TEST_F(MergeToolTest, TagsListsTheStandardPassSet) {
  std::string state = temp_path("tags.state");
  ASSERT_EQ(run_tool("ingest " + state + " rrc00=" + archive_a_,
                     temp_path("tags_ingest.out")),
            0);
  std::string out = temp_path("tags.out");
  ASSERT_EQ(run_tool("tags " + state, out), 0);
  EXPECT_EQ(read_file(out), "1\n2\n3\n4\n5\n6\n7\n8\n9\n");
}

TEST_F(MergeToolTest, ErrorsExitNonZero) {
  // No arguments: usage.
  EXPECT_NE(run_tool("", temp_path("usage.out")), 0);
  // Unknown command.
  EXPECT_NE(run_tool("frobnicate", temp_path("unknown.out")), 0);
  // Missing state file.
  EXPECT_NE(run_tool("merge " + temp_path("nonexistent.state"),
                     temp_path("missing.out")),
            0);
  // Malformed collector=archive operand.
  EXPECT_NE(run_tool("ingest " + temp_path("bad.state") + " no-separator",
                     temp_path("badarg.out")),
            0);
  // Corrupt state file: decode error, not a crash.
  std::string corrupt = temp_path("corrupt.state");
  write_file(corrupt, "BGPCthis is not a state file");
  EXPECT_NE(run_tool("merge " + corrupt, temp_path("corrupt.out")), 0);
}

}  // namespace
}  // namespace bgpcc
