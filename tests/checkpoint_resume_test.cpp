// Kill-and-resume differential for the checkpoint subsystem
// (AnalysisDriver::checkpoint/restore + StreamingIngestor cursor):
// interrupt a windowed analysis run after window K, serialize driver +
// ingest cursor, rebuild both in a "new process" (fresh objects, fresh
// input streams), resume, and require the final reports of every
// shipped pass to be IDENTICAL to the uninterrupted run — for every K.
//
// Also pins the documented non-goals and misuse errors: the resumed
// finish() stream contains only post-checkpoint windows (RunStore spill
// files belong to the original process), and every out-of-order or
// mismatched-configuration call throws ConfigError instead of
// corrupting results.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "analytics/serialize.h"
#include "archive_gen.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "netbase/error.h"

namespace bgpcc::analytics {
namespace {

using core::CleaningOptions;
using core::IngestOptions;
using core::IngestResult;
using core::Registry;
using core::StreamingIngestor;
using core::archgen::allocated_registry;
using core::archgen::ArchiveGenerator;

struct Handles {
  PassHandle<ClassifierPass> types;
  PassHandle<PerSessionTypesPass> per_session;
  PassHandle<TomographyPass> tomography;
  PassHandle<CommunityStatsPass> communities;
  PassHandle<DuplicateBurstPass> duplicates;
  PassHandle<AnomalyPass> anomaly;
  PassHandle<RevealedPass> revealed;
  PassHandle<ExplorationPass> exploration;
  PassHandle<UsageClassificationPass> usage;
};

Handles add_all_passes(AnalysisDriver& driver) {
  return Handles{driver.add(ClassifierPass{}),
                 driver.add(PerSessionTypesPass{}),
                 driver.add(TomographyPass{}),
                 driver.add(CommunityStatsPass{}),
                 driver.add(DuplicateBurstPass{}),
                 driver.add(AnomalyPass{}),
                 driver.add(RevealedPass{}),
                 driver.add(ExplorationPass{}),
                 driver.add(UsageClassificationPass{})};
}

struct AllReports {
  ClassifierPass::Report types;
  PerSessionTypesPass::Report per_session;
  TomographyPass::Report tomography;
  CommunityStatsPass::Report communities;
  DuplicateBurstPass::Report duplicates;
  AnomalyPass::Report anomaly;
  RevealedPass::Report revealed;
  ExplorationPass::Report exploration;
  UsageClassificationPass::Report usage;

  friend bool operator==(const AllReports&, const AllReports&) = default;
};

AllReports collect(AnalysisDriver& driver, const Handles& handles) {
  return AllReports{driver.report(handles.types),
                    driver.report(handles.per_session),
                    driver.report(handles.tomography),
                    driver.report(handles.communities),
                    driver.report(handles.duplicates),
                    driver.report(handles.anomaly),
                    driver.report(handles.revealed),
                    driver.report(handles.exploration),
                    driver.report(handles.usage)};
}

/// The shared two-collector fixture: sessions on two archives, windowed
/// ingestion so a checkpoint can land mid-source or between sources.
struct Fixture {
  std::string archive_a;
  std::string archive_b;
  Registry registry;
  CleaningOptions cleaning;

  Fixture() {
    ArchiveGenerator gen_a(20260806);
    ArchiveGenerator gen_b(20260807);
    archive_a = gen_a.generate(700);
    archive_b = gen_b.generate(500);
    registry = allocated_registry();
    cleaning.registry = &registry;
  }

  [[nodiscard]] IngestOptions options() const {
    IngestOptions opt;
    opt.chunk_records = 32;
    opt.window_records = 128;
    opt.cleaning = &cleaning;
    return opt;
  }

  /// Builds driver + ingestor wired together over fresh input streams.
  struct Run {
    AnalysisDriver driver;
    Handles handles;
    IngestOptions opt;
    std::unique_ptr<std::istringstream> in_a;
    std::unique_ptr<std::istringstream> in_b;
    std::unique_ptr<StreamingIngestor> engine;
  };

  [[nodiscard]] std::unique_ptr<Run> start() const {
    auto run = std::make_unique<Run>();
    run->handles = add_all_passes(run->driver);
    run->opt = options();
    run->driver.attach(run->opt);
    run->engine = std::make_unique<StreamingIngestor>(run->opt);
    run->in_a = std::make_unique<std::istringstream>(archive_a);
    run->in_b = std::make_unique<std::istringstream>(archive_b);
    run->engine->add_stream("rrc00", *run->in_a);
    run->engine->add_stream("rrc01", *run->in_b);
    return run;
  }
};

TEST(CheckpointResume, EveryInterruptionPointResumesExactly) {
  Fixture fixture;

  // Uninterrupted reference (and the window count for the K sweep).
  auto reference = fixture.start();
  std::size_t windows = 0;
  while (reference->engine->poll()) ++windows;
  IngestResult ref_result = reference->engine->finish();
  ASSERT_GT(ref_result.stream.size(), 0u);
  ASSERT_GT(windows, 3u) << "fixture too small to exercise resume";
  AllReports expected = collect(reference->driver, reference->handles);
  ASSERT_GT(expected.types.counts.total(), 0u);
  ASSERT_GT(expected.revealed.total_unique, 0u);

  for (std::size_t k = 1; k < windows; ++k) {
    // "Process one": run K windows, checkpoint, drop everything.
    std::ostringstream checkpoint;
    {
      auto run = fixture.start();
      for (std::size_t w = 0; w < k; ++w) {
        ASSERT_TRUE(run->engine->poll()) << "k=" << k;
      }
      run->driver.checkpoint(checkpoint, *run->engine);
    }

    // "Process two": fresh everything, restore, resume to completion.
    auto resumed = fixture.start();
    std::istringstream checkpoint_in(checkpoint.str());
    resumed->driver.restore(checkpoint_in, *resumed->engine);
    IngestResult result = resumed->engine->finish();
    // The resumed stream holds only post-checkpoint windows (the
    // original process owns the earlier runs); the REPORTS are complete
    // because the driver states cover every pre-checkpoint record.
    EXPECT_LT(result.stream.size(), ref_result.stream.size()) << "k=" << k;
    EXPECT_EQ(collect(resumed->driver, resumed->handles), expected)
        << "k=" << k;
  }
}

TEST(CheckpointResume, ShardCountAdoptedAcrossHosts) {
  Fixture fixture;

  // Reference: the uninterrupted run at this host's default shard count.
  auto reference = fixture.start();
  IngestResult ref_result = reference->engine->finish();
  ASSERT_GT(ref_result.stream.size(), 0u);
  AllReports expected = collect(reference->driver, reference->handles);

  // "Big host": an explicit 32-shard run (what num_threads = 0 resolves
  // to on a 32-core machine), interrupted after two windows.
  std::ostringstream checkpoint;
  {
    AnalysisDriver driver;
    (void)add_all_passes(driver);
    IngestOptions opt = fixture.options();
    opt.shards = 32;
    driver.attach(opt);
    StreamingIngestor engine(opt);
    std::istringstream in_a(fixture.archive_a);
    std::istringstream in_b(fixture.archive_b);
    engine.add_stream("rrc00", in_a);
    engine.add_stream("rrc01", in_b);
    ASSERT_TRUE(engine.poll());
    ASSERT_TRUE(engine.poll());
    EXPECT_EQ(engine.stats().shards, 32u);
    driver.checkpoint(checkpoint, engine);
  }

  // "Small host": default options resolve to 16 shards here, but the
  // restore ADOPTS the checkpoint's 32 — and because the shard count is
  // a parallelism knob with no semantic weight, the resumed reports
  // equal the default-shard uninterrupted run exactly.
  auto resumed = fixture.start();
  std::istringstream in(checkpoint.str());
  resumed->driver.restore(in, *resumed->engine);
  EXPECT_EQ(resumed->engine->stats().shards, 32u);
  (void)resumed->engine->finish();
  EXPECT_EQ(collect(resumed->driver, resumed->handles), expected);
}

TEST(CheckpointResume, CheckpointIsDeterministic) {
  Fixture fixture;
  std::ostringstream first;
  std::ostringstream second;
  for (std::ostringstream* out : {&first, &second}) {
    auto run = fixture.start();
    ASSERT_TRUE(run->engine->poll());
    ASSERT_TRUE(run->engine->poll());
    run->driver.checkpoint(*out, *run->engine);
  }
  EXPECT_EQ(first.str(), second.str());
}

TEST(CheckpointResume, StateOnlyCheckpointRestoresReports) {
  Fixture fixture;
  auto run = fixture.start();
  IngestResult result = run->engine->finish();
  ASSERT_GT(result.stream.size(), 0u);

  // Driver-only snapshot (no ingest cursor): shard-faithful states.
  std::ostringstream out;
  run->driver.checkpoint(out);
  AllReports expected = collect(run->driver, run->handles);

  AnalysisDriver restored;
  Handles handles = add_all_passes(restored);
  std::istringstream in(out.str());
  restored.restore(in);
  EXPECT_EQ(collect(restored, handles), expected);

  // The same snapshot is also loadable as a disjoint-run partial.
  AnalysisDriver merged;
  Handles merged_handles = add_all_passes(merged);
  std::istringstream again(out.str());
  merged.load_state(again);
  EXPECT_EQ(collect(merged, merged_handles), expected);
}

TEST(CheckpointResume, MisuseThrowsConfigError) {
  Fixture fixture;

  // Checkpoint after finalization.
  {
    auto run = fixture.start();
    (void)run->engine->finish();
    (void)run->driver.report(run->handles.types);
    std::ostringstream out;
    EXPECT_THROW(run->driver.checkpoint(out), ConfigError);
    std::istringstream in("x");
    EXPECT_THROW(run->driver.restore(in), ConfigError);
  }

  // checkpoint_state once finished.
  {
    auto run = fixture.start();
    (void)run->engine->finish();
    EXPECT_THROW((void)run->engine->checkpoint_state(), ConfigError);
  }

  // Cursor-less checkpoint restored with an ingestor.
  {
    auto run = fixture.start();
    ASSERT_TRUE(run->engine->poll());
    std::ostringstream out;
    run->driver.checkpoint(out);  // no ingestor
    auto resumed = fixture.start();
    std::istringstream in(out.str());
    EXPECT_THROW(resumed->driver.restore(in, *resumed->engine), ConfigError);
  }

  // Mismatched chunk_records on the resuming ingestor.
  {
    auto run = fixture.start();
    ASSERT_TRUE(run->engine->poll());
    std::ostringstream out;
    run->driver.checkpoint(out, *run->engine);

    AnalysisDriver driver;
    (void)add_all_passes(driver);
    IngestOptions opt = fixture.options();
    opt.chunk_records = 64;  // chunking defines windows: must match
    driver.attach(opt);
    StreamingIngestor engine(opt);
    std::istringstream in_a(fixture.archive_a);
    std::istringstream in_b(fixture.archive_b);
    engine.add_stream("rrc00", in_a);
    engine.add_stream("rrc01", in_b);
    std::istringstream in(out.str());
    EXPECT_THROW(driver.restore(in, engine), ConfigError);
  }

  // Mismatched collector registration.
  {
    auto run = fixture.start();
    ASSERT_TRUE(run->engine->poll());
    std::ostringstream out;
    run->driver.checkpoint(out, *run->engine);

    AnalysisDriver driver;
    (void)add_all_passes(driver);
    IngestOptions opt = fixture.options();
    driver.attach(opt);
    StreamingIngestor engine(opt);
    std::istringstream in_a(fixture.archive_a);
    engine.add_stream("rrc00", in_a);  // rrc01 missing
    std::istringstream in(out.str());
    EXPECT_THROW(driver.restore(in, engine), ConfigError);
  }

  // A second attach() resolving a different shard count: the states are
  // already minted at the first run's layout.
  {
    AnalysisDriver driver;
    (void)add_all_passes(driver);
    IngestOptions first = fixture.options();
    driver.attach(first);
    IngestOptions second = fixture.options();
    second.shards = 32;
    EXPECT_THROW(driver.attach(second), ConfigError);
  }

  // Restore into a used (already polled) ingestor.
  {
    auto run = fixture.start();
    ASSERT_TRUE(run->engine->poll());
    std::ostringstream out;
    run->driver.checkpoint(out, *run->engine);

    auto resumed = fixture.start();
    ASSERT_TRUE(resumed->engine->poll());
    std::istringstream in(out.str());
    EXPECT_THROW(resumed->driver.restore(in, *resumed->engine), ConfigError);
  }
}

TEST(CheckpointResume, TruncatedCheckpointThrowsDecodeError) {
  Fixture fixture;
  auto run = fixture.start();
  ASSERT_TRUE(run->engine->poll());
  std::ostringstream out;
  run->driver.checkpoint(out, *run->engine);
  std::string bytes = out.str();

  for (std::size_t cut : {std::size_t{3}, std::size_t{20}, bytes.size() / 2,
                          bytes.size() - 1}) {
    auto resumed = fixture.start();
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_THROW(resumed->driver.restore(in, *resumed->engine), DecodeError)
        << "cut=" << cut;
  }
}

TEST(CheckpointResume, SourceShorterThanCheckpointThrows) {
  Fixture fixture;
  auto run = fixture.start();
  ASSERT_TRUE(run->engine->poll());
  ASSERT_TRUE(run->engine->poll());
  std::ostringstream out;
  run->driver.checkpoint(out, *run->engine);

  // Resume against a truncated first archive: the framer cannot skip to
  // the checkpointed chunk, and must say so rather than resume wrong.
  AnalysisDriver driver;
  (void)add_all_passes(driver);
  IngestOptions opt = fixture.options();
  driver.attach(opt);
  StreamingIngestor engine(opt);
  std::istringstream in_a(fixture.archive_a.substr(0, 64));
  std::istringstream in_b(fixture.archive_b);
  engine.add_stream("rrc00", in_a);
  engine.add_stream("rrc01", in_b);
  std::istringstream in(out.str());
  EXPECT_THROW(driver.restore(in, engine), DecodeError);
}

}  // namespace
}  // namespace bgpcc::analytics
