// Adversarial MRT corpus: truncated headers, lying length fields, unknown
// record types and subtypes, zero-length bodies, EOF mid-record, and
// corrupt inner BGP messages. Every malformed input class must
// deterministically raise DecodeError — from Reader, ChunkedReader, and
// the pipelined ingest_mrt_sources/ingest_mrt_files engine (including
// from framer and decode worker threads, with the bounded queue at
// pathological depths) — and never hang, crash, or silently drop
// records. Tests completing at all is the no-hang assertion; ASan/UBSan
// CI covers the no-crash half.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/codec.h"
#include "core/ingest.h"
#include "mrt/mrt.h"
#include "mrt/source.h"
#include "netbase/bytes.h"
#include "netbase/error.h"

namespace bgpcc::mrt {
namespace {

std::string bytes_to_string(const std::vector<std::uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

/// Hand-assembles one MRT record with full control over every header
/// field — including inconsistent ones no Writer would produce.
std::string raw_record(std::uint16_t type, std::uint16_t subtype,
                       std::uint32_t claimed_length,
                       const std::vector<std::uint8_t>& body) {
  ByteWriter w;
  w.u32(1600000000);  // timestamp
  w.u16(type);
  w.u16(subtype);
  w.u32(claimed_length);
  w.bytes(body);
  return bytes_to_string(w.data());
}

/// One well-formed BGP4MP_ET MESSAGE_AS4 record carrying a valid UPDATE.
std::string good_record(std::uint32_t peer_asn = 65001) {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("10.1.0.0/16"));
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({peer_asn, 65100});
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  update.attrs = std::move(attrs);

  Bgp4mpMessage message;
  message.peer_asn = Asn(peer_asn);
  message.local_asn = Asn(64512);
  message.peer_ip = IpAddress::v4(0x0a000001u);
  message.local_ip = IpAddress::from_string("203.0.113.1");
  message.bgp_message = encode_update(update);

  std::ostringstream out;
  Writer writer(out);
  writer.write_message(Timestamp::from_unix_seconds(1600000000), message);
  return out.str();
}

/// A structurally valid record whose inner BGP message is garbage: frames
/// fine, dies on a decode worker.
std::string corrupt_inner_record() {
  Bgp4mpMessage message;
  message.peer_asn = Asn(65001);
  message.local_asn = Asn(64512);
  message.peer_ip = IpAddress::v4(0x0a000001u);
  message.local_ip = IpAddress::from_string("203.0.113.1");
  message.bgp_message = std::vector<std::uint8_t>(19, 0x00);  // bad marker

  std::ostringstream out;
  Writer writer(out);
  writer.write_message(Timestamp::from_unix_seconds(1600000000), message);
  return out.str();
}

void expect_reader_throws(const std::string& archive) {
  {
    std::istringstream in(archive);
    Reader reader(in);
    EXPECT_THROW(
        {
          while (reader.next()) {
          }
        },
        DecodeError);
  }
  {
    std::istringstream in(archive);
    ChunkedReader reader(in, 4);
    EXPECT_THROW(
        {
          while (reader.next_chunk()) {
          }
        },
        DecodeError);
  }
}

void expect_ingest_throws(const std::string& archive) {
  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    core::IngestOptions options;
    options.num_threads = threads;
    options.chunk_records = 2;
    options.queue_chunks = 2;
    std::istringstream in(archive);
    EXPECT_THROW((void)core::ingest_mrt_stream("C1", in, options),
                 DecodeError);
  }
}

/// Like expect_reader_throws, but through the transparent decompression
/// layer — so the DecodeError comes from the gzip/bzip2 stage (or from
/// the MRT layer validating the INFLATED bytes), not from the raw reader
/// misparsing compressed bytes as a record header.
void expect_decompressed_throws(const std::string& archive) {
  {
    std::istringstream in(archive);
    InputStream input = InputStream::wrap(in);
    Reader reader(input.stream());
    EXPECT_THROW(
        {
          while (reader.next()) {
          }
        },
        DecodeError);
  }
  {
    std::istringstream in(archive);
    InputStream input = InputStream::wrap(in);
    ChunkedReader reader(input.stream(), 4);
    EXPECT_THROW(
        {
          while (reader.next_chunk()) {
          }
        },
        DecodeError);
  }
  // The engine runs its own detection on every source.
  expect_ingest_throws(archive);
}

void expect_all_throw(const std::string& archive) {
  expect_reader_throws(archive);
  expect_ingest_throws(archive);
}

TEST(MrtRobustness, TruncatedHeader) {
  expect_all_throw(std::string("\x5f\x6a\x00", 3));
  // 11 of the 12 header bytes: one short.
  expect_all_throw(raw_record(16, 4, 0, {}).substr(0, 11));
}

TEST(MrtRobustness, TruncatedBodyEofMidRecord) {
  // Header claims 100 body bytes; only 10 follow.
  expect_all_throw(raw_record(16, 4, 100, std::vector<std::uint8_t>(10, 0)));
  // A good record, then EOF mid-way through the next one's body.
  std::string good = good_record();
  expect_all_throw(good + raw_record(17, 4, 500, {0x01, 0x02}));
  // EOF exactly mid-header of the trailing record.
  expect_all_throw(good + good.substr(0, 7));
}

TEST(MrtRobustness, LyingLengthField) {
  // A length field of ~4 GiB on a tiny archive must fail the sanity bound
  // (fast, no giant allocation), not OOM or read garbage.
  expect_all_throw(raw_record(16, 4, 0xFFFFFFF0u, {}));
  expect_all_throw(raw_record(17, 1, kMaxRecordLength + 1, {}));
}

TEST(MrtRobustness, UnknownRecordType) {
  // TABLE_DUMP (12) and a nonsense type: unsupported records are a hard
  // error, never a silent skip that would under-count a collector's feed.
  expect_all_throw(raw_record(12, 1, 4, {0, 0, 0, 0}));
  expect_all_throw(raw_record(999, 4, 4, {0, 0, 0, 0}));
  // After a valid prefix of the archive, so partial results can't leak.
  expect_all_throw(good_record() + raw_record(999, 4, 0, {}));
}

TEST(MrtRobustness, UnknownBgp4mpSubtype) {
  expect_all_throw(raw_record(16, 77, 4, {0, 0, 0, 0}));
  expect_all_throw(good_record() +
                   raw_record(17, 9, 8, {0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST(MrtRobustness, ZeroLengthBody) {
  // BGP4MP_ET with length 0 cannot even hold its microsecond field.
  expect_all_throw(raw_record(17, 4, 0, {}));
  // Plain BGP4MP MESSAGE with an empty body frames, but decoding the
  // endpoints underruns — the ingest engine must surface that.
  expect_ingest_throws(raw_record(16, 4, 0, {}));
  {
    std::istringstream in(raw_record(16, 4, 0, {}));
    Reader reader(in);
    auto record = reader.next();
    ASSERT_TRUE(record.has_value());
    EXPECT_THROW((void)Reader::parse_message(*record), DecodeError);
  }
}

TEST(MrtRobustness, TruncatedEndpoints) {
  // A BGP4MP message whose body ends inside the endpoint block.
  expect_ingest_throws(raw_record(16, 4, 6, {0, 0, 0xFD, 0xE9, 0, 0}));
  // AFI claims IPv6 but only 4 address bytes follow.
  ByteWriter body;
  body.u32(65001);  // peer asn
  body.u32(64512);  // local asn
  body.u16(0);      // ifindex
  body.u16(2);      // AFI: IPv6
  body.u32(0x0a000001);
  expect_ingest_throws(raw_record(
      16, 4, static_cast<std::uint32_t>(body.size()), body.data()));
}

// Worker-thread propagation: the corrupt record decodes on a pool worker
// while the framer is still pushing. The abort path must unblock a framer
// waiting on the full bounded queue — completing at all proves no
// deadlock.
TEST(MrtRobustness, CorruptInnerMessageOnWorkerThread) {
  std::string archive;
  for (int i = 0; i < 64; ++i) archive += good_record();
  archive += corrupt_inner_record();
  for (int i = 0; i < 64; ++i) archive += good_record();

  core::IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 1;  // many chunks
  options.queue_chunks = 2;   // pathologically shallow queue
  std::istringstream in(archive);
  EXPECT_THROW((void)core::ingest_mrt_stream("C1", in, options), DecodeError);
}

// Mirror case: the FRAMER throws mid-pipeline (truncated tail) while
// decode workers are waiting on the queue; close/abort must release them.
TEST(MrtRobustness, FramerThrowsMidPipeline) {
  std::string archive;
  for (int i = 0; i < 64; ++i) archive += good_record();
  archive += good_record().substr(0, 20);  // truncated tail record

  core::IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 4;
  options.queue_chunks = 2;
  std::istringstream in(archive);
  EXPECT_THROW((void)core::ingest_mrt_stream("C1", in, options), DecodeError);
}

// The corrupt record as the very FIRST one of a long archive: workers die
// immediately while framers still have hundreds of chunks to push.
TEST(MrtRobustness, CorruptFirstRecordLongArchive) {
  std::string archive = corrupt_inner_record();
  for (int i = 0; i < 256; ++i) archive += good_record();

  core::IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 1;
  options.queue_chunks = 1;
  std::istringstream in(archive);
  EXPECT_THROW((void)core::ingest_mrt_stream("C1", in, options), DecodeError);
}

TEST(MrtRobustness, MultiSourceErrors) {
  // Second of three sources is corrupt: the whole multi-archive run fails,
  // at any thread count, with concurrent framers.
  std::string good;
  for (int i = 0; i < 32; ++i) good += good_record();
  std::string bad = good + raw_record(999, 4, 0, {});

  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::istringstream in_a(good);
    std::istringstream in_b(bad);
    std::istringstream in_c(good);
    core::IngestOptions options;
    options.num_threads = threads;
    options.chunk_records = 2;
    options.frame_threads = 3;
    options.queue_chunks = 2;
    EXPECT_THROW((void)core::ingest_mrt_sources(
                     {core::MrtSource{"C1", &in_a},
                      core::MrtSource{"C2", &in_b},
                      core::MrtSource{"C3", &in_c}},
                     options),
                 DecodeError);
  }
}

TEST(MrtRobustness, MissingFileAndNullStream) {
  EXPECT_THROW((void)core::ingest_mrt_files(
                   "C1", {"/nonexistent/bgpcc/archive.mrt"}),
               DecodeError);
  EXPECT_THROW((void)core::ingest_mrt_sources(
                   {core::MrtSource{"C1", nullptr}}),
               ConfigError);
}

TEST(MrtRobustness, EmptyArchiveIsCleanEof) {
  // Sanity guard for the other direction: a zero-byte archive is a valid
  // empty feed, not an error.
  std::istringstream in_reader((std::string()));
  Reader reader(in_reader);
  EXPECT_FALSE(reader.next().has_value());

  std::istringstream in_ingest((std::string()));
  core::IngestResult result = core::ingest_mrt_stream("C1", in_ingest);
  EXPECT_EQ(result.stream.size(), 0u);
  EXPECT_EQ(result.stats.raw_records, 0u);
}

// Compressed-input robustness: a truncated or corrupt gzip/bzip2 archive
// must raise DecodeError from the decompression stage — through the
// Reader, the ChunkedReader, and the pipelined engine (no hang on the
// bounded queue, no partial silent results).
TEST(MrtRobustness, TruncatedGzipStream) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  std::string archive;
  for (int i = 0; i < 16; ++i) archive += good_record();
  std::string gz = gzip_compress(archive);
  ASSERT_GT(gz.size(), 24u);
  // Cut inside the deflate payload and inside the 8-byte CRC/size
  // trailer: both are mid-member EOFs.
  expect_decompressed_throws(gz.substr(0, gz.size() / 2));
  expect_decompressed_throws(gz.substr(0, gz.size() - 4));
}

TEST(MrtRobustness, TruncatedBzip2Stream) {
  if (!bzip2_supported()) GTEST_SKIP() << "built without libbz2";
  std::string archive;
  for (int i = 0; i < 16; ++i) archive += good_record();
  std::string bz2 = bzip2_compress(archive);
  ASSERT_GT(bz2.size(), 12u);
  expect_decompressed_throws(bz2.substr(0, bz2.size() / 2));
  expect_decompressed_throws(bz2.substr(0, bz2.size() - 2));
}

TEST(MrtRobustness, GarbageAfterCompressionMagic) {
  if (!gzip_supported() || !bzip2_supported()) {
    GTEST_SKIP() << "built without zlib/libbz2";
  }
  // A valid magic followed by noise: the decompressor itself must reject
  // it (gzip: bad header CRC/flags or deflate stream; bzip2: bad block).
  std::string gz_garbage("\x1f\x8b", 2);
  gz_garbage += std::string(64, '\x55');
  expect_decompressed_throws(gz_garbage);

  std::string bz2_garbage("BZh9", 4);
  bz2_garbage += std::string(64, '\x55');
  expect_decompressed_throws(bz2_garbage);
}

TEST(MrtRobustness, CompressedGarbagePayload) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  // Valid gzip wrapping that inflates fine — into bytes that are not MRT.
  // The failure must come from the MRT layer, proving the decompressed
  // bytes actually flow through the same validation.
  std::string garbage = gzip_compress(std::string(64, '\x7f'));
  expect_decompressed_throws(garbage);
  // And a compressed archive whose decompressed tail is truncated.
  std::string archive;
  for (int i = 0; i < 8; ++i) archive += good_record();
  expect_decompressed_throws(
      gzip_compress(archive.substr(0, archive.size() - 5)));
}

TEST(MrtRobustness, TruncatedGzipOnWorkerPipeline) {
  if (!gzip_supported()) GTEST_SKIP() << "built without zlib";
  // Long compressed archive with a truncated tail at pathological queue
  // depth: the framer throws mid-decompression while workers are busy —
  // completing at all proves the abort path also covers the
  // decompression stage.
  std::string archive;
  for (int i = 0; i < 256; ++i) archive += good_record();
  std::string gz = gzip_compress(archive);
  std::string truncated = gz.substr(0, gz.size() - 6);

  core::IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 1;
  options.queue_chunks = 1;
  std::istringstream in(truncated);
  EXPECT_THROW((void)core::ingest_mrt_stream("C1", in, options), DecodeError);
}

TEST(MrtRobustness, TwoOctetWriterRejectsWideAsn) {
  Bgp4mpMessage message;
  message.peer_asn = Asn(200000);  // does not fit 16 bits
  message.local_asn = Asn(64512);
  message.peer_ip = IpAddress::v4(0x0a000001u);
  message.local_ip = IpAddress::from_string("203.0.113.1");
  message.bgp_message = encode_keepalive();

  std::ostringstream out;
  Writer writer(out);
  EXPECT_THROW(writer.write_message(Timestamp::from_unix_seconds(1600000000),
                                    message, /*extended_time=*/true,
                                    /*as4=*/false),
               ConfigError);
}

}  // namespace
}  // namespace bgpcc::mrt
