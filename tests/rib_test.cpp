// Unit tests: Adj-RIB-In / Loc-RIB / Adj-RIB-Out change semantics.
#include <gtest/gtest.h>

#include "rib/rib.h"

namespace bgpcc {
namespace {

Route make_route(int community_value = 0) {
  Route r;
  r.prefix = Prefix::from_string("203.0.113.0/24");
  r.attrs.as_path = AsPath::sequence({100, 200});
  r.attrs.next_hop = IpAddress::from_string("10.0.0.1");
  if (community_value != 0) {
    r.attrs.communities.add(
        Community::of(200, static_cast<std::uint16_t>(community_value)));
  }
  r.source.neighbor_id = 1;
  return r;
}

TEST(AdjRibIn, NewChangedUnchanged) {
  AdjRibIn rib;
  Route r = make_route(300);
  EXPECT_EQ(rib.update(r), RibChange::kNew);
  EXPECT_EQ(rib.update(r), RibChange::kUnchanged);
  Route r2 = make_route(400);
  EXPECT_EQ(rib.update(r2), RibChange::kChanged);
  EXPECT_EQ(rib.size(), 1u);
}

TEST(AdjRibIn, UnchangedAttrsButNewerTimestampIsUnchanged) {
  // Duplicate detection must look at attributes, not bookkeeping.
  AdjRibIn rib;
  Route r = make_route(300);
  r.learned_at = Timestamp::from_unix_seconds(1);
  rib.update(r);
  r.learned_at = Timestamp::from_unix_seconds(2);
  EXPECT_EQ(rib.update(r), RibChange::kUnchanged);
}

TEST(AdjRibIn, Withdraw) {
  AdjRibIn rib;
  Route r = make_route();
  rib.update(r);
  EXPECT_TRUE(rib.withdraw(r.prefix));
  EXPECT_FALSE(rib.withdraw(r.prefix));
  EXPECT_EQ(rib.find(r.prefix), nullptr);
}

TEST(AdjRibIn, Prefixes) {
  AdjRibIn rib;
  Route r = make_route();
  rib.update(r);
  Route r2 = make_route();
  r2.prefix = Prefix::from_string("10.0.0.0/8");
  rib.update(r2);
  auto prefixes = rib.prefixes();
  EXPECT_EQ(prefixes.size(), 2u);
}

TEST(LocRib, SourceChangeWithSameAttrsIsChanged) {
  // The Exp1 case: same attributes via a different neighbor must register
  // as a change (it triggers re-advertisement attempts).
  LocRib rib;
  Route r = make_route(300);
  EXPECT_EQ(rib.set_best(r.prefix, r), RibChange::kNew);
  Route r2 = r;
  r2.source.neighbor_id = 2;
  EXPECT_EQ(rib.set_best(r.prefix, r2), RibChange::kChanged);
  EXPECT_EQ(rib.set_best(r.prefix, r2), RibChange::kUnchanged);
}

TEST(LocRib, RemoveAndLookup) {
  LocRib rib;
  Route r = make_route();
  rib.set_best(r.prefix, r);
  auto hit = rib.lookup(IpAddress::from_string("203.0.113.7"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, r.prefix);
  EXPECT_TRUE(rib.remove(r.prefix));
  EXPECT_FALSE(rib.remove(r.prefix));
  EXPECT_FALSE(
      rib.lookup(IpAddress::from_string("203.0.113.7")).has_value());
}

TEST(AdjRibOut, DuplicateDetection) {
  // The Junos suppression mechanism: kUnchanged flags a would-be duplicate.
  AdjRibOut rib;
  Prefix p = Prefix::from_string("203.0.113.0/24");
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100});
  attrs.next_hop = IpAddress::from_string("10.0.0.1");
  EXPECT_EQ(rib.advertise(p, attrs), RibChange::kNew);
  EXPECT_EQ(rib.advertise(p, attrs), RibChange::kUnchanged);
  attrs.communities.add(Community::of(200, 300));
  EXPECT_EQ(rib.advertise(p, attrs), RibChange::kChanged);
}

TEST(AdjRibOut, WithdrawTracksAdvertisedState) {
  AdjRibOut rib;
  Prefix p = Prefix::from_string("203.0.113.0/24");
  EXPECT_FALSE(rib.withdraw(p));  // never advertised: nothing to withdraw
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100});
  rib.advertise(p, attrs);
  EXPECT_TRUE(rib.withdraw(p));
  EXPECT_FALSE(rib.withdraw(p));
}

}  // namespace
}  // namespace bgpcc
