// The analytics engine's correctness battery:
//
//  - differential: every shipped pass must report IDENTICALLY across
//    thread counts × window sizes × execution mode (inline on the shard
//    threads, streaming sink, materialized stream) — the Pass contract
//    (analytics/pass.h) made executable;
//  - golden: classifier and tomography pass reports over the shared
//    golden fixture (tests/golden_fixture.h) are pinned value by value;
//  - driver lifecycle: registration/observation/report ordering is
//    enforced with loud ConfigErrors, not silent miscounts.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "archive_gen.h"
#include "bgp/codec.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "golden_fixture.h"
#include "mrt/mrt.h"
#include "netbase/error.h"

namespace bgpcc::analytics {
namespace {

using core::CleaningOptions;
using core::IngestOptions;
using core::IngestResult;
using core::Registry;
using core::StreamingIngestor;
using core::UpdateRecord;
using core::UpdateStream;
using core::archgen::allocated_registry;
using core::archgen::ArchiveGenerator;

/// Every shipped pass's reports, bundled for equality comparison.
struct AllReports {
  ClassifierPass::Report types;
  PerSessionTypesPass::Report per_session;
  TomographyPass::Report tomography;
  CommunityStatsPass::Report communities;
  DuplicateBurstPass::Report duplicates;

  friend bool operator==(const AllReports&, const AllReports&) = default;
};

struct Handles {
  PassHandle<ClassifierPass> types;
  PassHandle<PerSessionTypesPass> per_session;
  PassHandle<TomographyPass> tomography;
  PassHandle<CommunityStatsPass> communities;
  PassHandle<DuplicateBurstPass> duplicates;
};

Handles add_all_passes(AnalysisDriver& driver) {
  core::TomographyOptions tomography;
  tomography.min_on_path = 5;
  return Handles{driver.add(ClassifierPass{}),
                 driver.add(PerSessionTypesPass{}),
                 driver.add(TomographyPass{tomography}),
                 driver.add(CommunityStatsPass{}),
                 driver.add(DuplicateBurstPass{})};
}

AllReports collect(AnalysisDriver& driver, const Handles& handles) {
  return AllReports{driver.report(handles.types),
                    driver.report(handles.per_session),
                    driver.report(handles.tomography),
                    driver.report(handles.communities),
                    driver.report(handles.duplicates)};
}

enum class Mode { kInline, kSink };

AllReports run_config(const std::string& archive,
                      const CleaningOptions& cleaning, unsigned threads,
                      std::size_t window_records, Mode mode) {
  IngestOptions options;
  options.num_threads = threads;
  options.chunk_records = 32;
  options.cleaning = &cleaning;
  options.window_records = window_records;

  AnalysisDriver driver;
  Handles handles = add_all_passes(driver);
  std::istringstream in(archive);
  if (mode == Mode::kInline) {
    driver.attach(options);
    StreamingIngestor engine(options);
    engine.add_stream("rrc00", in);
    IngestResult result = engine.finish();
    EXPECT_GT(result.stream.size(), 0u);
  } else {
    StreamingIngestor engine(options);
    engine.add_stream("rrc00", in);
    IngestResult result = engine.finish(driver.sink());
    EXPECT_EQ(result.stream.size(), 0u);
  }
  return collect(driver, handles);
}

// ---------------------------------------------------------------------------
// Differential: reports are identical across every execution shape.

TEST(AnalyticsDifferential, ThreadsWindowsAndModesAgree) {
  ArchiveGenerator gen(20260801);
  std::string archive = gen.generate(1200);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  // Reference: materialized stream observed on one thread.
  IngestOptions batch;
  batch.num_threads = 1;
  batch.cleaning = &cleaning;
  std::istringstream in(archive);
  IngestResult result = core::ingest_mrt_stream("rrc00", in, batch);
  ASSERT_GT(result.stream.size(), 0u);
  AnalysisDriver reference;
  Handles handles = add_all_passes(reference);
  reference.observe_stream(result.stream);
  AllReports expected = collect(reference, handles);

  // Sanity: the fixture actually exercises every pass.
  ASSERT_GT(expected.types.counts.total(), 0u);
  ASSERT_GT(expected.duplicates.nn, 0u);
  ASSERT_GT(expected.communities.unique_communities, 0u);
  ASSERT_FALSE(expected.tomography.empty());
  ASSERT_FALSE(expected.per_session.empty());

  for (unsigned threads : {1u, 4u}) {
    for (std::size_t window : {std::size_t{0}, std::size_t{64}}) {
      for (Mode mode : {Mode::kInline, Mode::kSink}) {
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " window=" << window
                     << " mode=" << (mode == Mode::kInline ? "inline"
                                                           : "sink"));
        AllReports actual =
            run_config(archive, cleaning, threads, window, mode);
        EXPECT_TRUE(actual == expected);
      }
    }
  }
}

// Multi-archive inline analysis through the one-call helper: same
// reports as single-archive ingestion of the concatenation.
TEST(AnalyticsDifferential, MultiArchiveHelperAgrees) {
  ArchiveGenerator gen(42);
  std::string archive = gen.generate(600);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 16;
  options.cleaning = &cleaning;

  AnalysisDriver whole_driver;
  Handles whole_handles = add_all_passes(whole_driver);
  whole_driver.attach(options);
  std::istringstream whole_in(archive);
  (void)core::ingest_mrt_stream("rrc00", whole_in, options);
  AllReports expected = collect(whole_driver, whole_handles);

  // Split on a record boundary and ingest as two files of one collector.
  std::size_t cut = 0;
  {
    std::istringstream frame_in(archive);
    mrt::Reader reader(frame_in);
    while (reader.next()) {
      std::size_t pos = static_cast<std::size_t>(frame_in.tellg());
      if (pos <= archive.size() / 2) cut = pos;
    }
  }
  ASSERT_GT(cut, 0u);
  std::istringstream in_a(archive.substr(0, cut));
  std::istringstream in_b(archive.substr(cut));

  AnalysisDriver split_driver;
  Handles split_handles = add_all_passes(split_driver);
  IngestOptions split_options;
  split_options.num_threads = 2;
  split_options.chunk_records = 16;
  split_options.cleaning = &cleaning;
  split_driver.attach(split_options);
  (void)core::ingest_mrt_sources({core::MrtSource{"rrc00", &in_a},
                                  core::MrtSource{"rrc00", &in_b}},
                                 split_options);
  EXPECT_TRUE(collect(split_driver, split_handles) == expected);
}

// ---------------------------------------------------------------------------
// Golden: classifier and tomography pass reports over the shared golden
// fixture, pinned value by value. Regenerate ONLY for an intentional,
// reviewed change to a pass's contract.

const core::AsEvidence* find_asn(const TomographyPass::Report& report,
                                 std::uint32_t asn) {
  for (const core::AsEvidence& e : report) {
    if (e.asn == Asn(asn)) return &e;
  }
  return nullptr;
}

TEST(AnalyticsGolden, ClassifierAndTomographyReportsPinned) {
  Registry registry = core::goldenfix::golden_registry();
  CleaningOptions cleaning = core::goldenfix::golden_cleaning(registry);

  IngestOptions options;
  options.num_threads = 1;
  options.chunk_records = 8;
  options.cleaning = &cleaning;

  AnalysisDriver driver;
  auto types = driver.add(ClassifierPass{});
  core::TomographyOptions tomography_options;
  tomography_options.min_on_path = 5;
  auto tomography = driver.add(TomographyPass{tomography_options});
  auto communities = driver.add(CommunityStatsPass{});
  auto duplicates = driver.add(DuplicateBurstPass{});
  driver.attach(options);
  std::istringstream in(core::goldenfix::golden_archive());
  IngestResult result = core::ingest_mrt_stream("rrc00", in, options);
  ASSERT_EQ(result.stream.size(), 36u);

  ClassifierPass::Report t = driver.report(types);
  EXPECT_EQ(t.counts.count(core::AnnouncementType::kPc), 0u);
  EXPECT_EQ(t.counts.count(core::AnnouncementType::kPn), 0u);
  EXPECT_EQ(t.counts.count(core::AnnouncementType::kNc), 15u);
  EXPECT_EQ(t.counts.count(core::AnnouncementType::kNn), 10u);
  EXPECT_EQ(t.counts.count(core::AnnouncementType::kXc), 0u);
  EXPECT_EQ(t.counts.count(core::AnnouncementType::kXn), 0u);
  EXPECT_EQ(t.counts.first_sightings, 5u);
  EXPECT_EQ(t.counts.withdrawals, 6u);
  EXPECT_EQ(t.counts.nn_with_med_change, 0u);
  EXPECT_EQ(t.streams, 5u);

  TomographyPass::Report evidence = driver.report(tomography);
  ASSERT_EQ(evidence.size(), 6u);
  const core::AsEvidence* tagger = find_asn(evidence, 65100);
  ASSERT_NE(tagger, nullptr);
  EXPECT_EQ(tagger->on_path, 24u);
  EXPECT_EQ(tagger->own_namespace_tagged, 12u);
  EXPECT_EQ(tagger->classification, core::CommunityBehavior::kTagger);
  const core::AsEvidence* propagator = find_asn(evidence, 65001);
  ASSERT_NE(propagator, nullptr);
  EXPECT_EQ(propagator->on_path, 18u);
  EXPECT_EQ(propagator->as_peer, 18u);
  EXPECT_EQ(propagator->as_peer_with_communities, 18u);
  EXPECT_EQ(propagator->as_peer_with_foreign, 12u);
  EXPECT_EQ(propagator->classification,
            core::CommunityBehavior::kPropagator);
  const core::AsEvidence* cleaner = find_asn(evidence, 65002);
  ASSERT_NE(cleaner, nullptr);
  EXPECT_EQ(cleaner->as_peer, 6u);
  EXPECT_EQ(cleaner->as_peer_with_communities, 0u);
  EXPECT_EQ(cleaner->classification, core::CommunityBehavior::kCleaner);

  CommunityStatsPass::Report stats = driver.report(communities);
  EXPECT_EQ(stats.announcements, 30u);
  EXPECT_EQ(stats.withdrawals, 6u);
  EXPECT_EQ(stats.with_communities, 18u);
  EXPECT_EQ(stats.community_occurrences, 18u);
  EXPECT_EQ(stats.unique_communities, 12u);
  ASSERT_EQ(stats.namespaces.size(), 1u);
  EXPECT_EQ(stats.namespaces[0].asn16, 65100u);
  EXPECT_EQ(stats.namespaces[0].distinct_values, 12u);
  ASSERT_GE(stats.communities_per_announcement.size(), 2u);
  EXPECT_EQ(stats.communities_per_announcement[0], 12u);
  EXPECT_EQ(stats.communities_per_announcement[1], 18u);
  EXPECT_DOUBLE_EQ(stats.mean_communities(), 0.6);

  DuplicateBurstPass::Report dup = driver.report(duplicates);
  EXPECT_EQ(dup.classified, 25u);
  EXPECT_EQ(dup.nn, 10u);
  EXPECT_EQ(dup.bursts, 2u);
  ASSERT_EQ(dup.sessions.size(), 3u);
  EXPECT_EQ(dup.sessions[0].session.peer_asn, Asn(65002));
  EXPECT_EQ(dup.sessions[0].nn, 5u);
  EXPECT_EQ(dup.sessions[0].bursts, 1u);
  EXPECT_EQ(dup.sessions[0].longest_run, 5u);
  EXPECT_EQ(dup.sessions[1].session.peer_asn, Asn(65010));
  EXPECT_EQ(dup.sessions[1].nn, 5u);
  EXPECT_EQ(dup.sessions[2].session.peer_asn, Asn(65001));
  EXPECT_EQ(dup.sessions[2].nn, 0u);
  EXPECT_EQ(dup.sessions[2].classified, 15u);
}

// ---------------------------------------------------------------------------
// Pass algebra: manual splits merge to the single-state result.

TEST(AnalyticsPasses, ManualMergeEqualsSingleState) {
  ArchiveGenerator gen(7);
  std::string archive = gen.generate(300);
  IngestOptions options;
  options.num_threads = 1;
  std::istringstream in(archive);
  IngestResult result = core::ingest_mrt_stream("rrc00", in, options);
  const std::vector<UpdateRecord>& records = result.stream.records();
  ASSERT_GT(records.size(), 10u);

  CommunityStatsPass stats_pass;
  DuplicateBurstPass dup_pass;
  auto whole_stats = stats_pass.make_state();
  auto whole_dup = dup_pass.make_state();
  for (const UpdateRecord& record : records) {
    whole_stats.observe(record);
    whole_dup.observe(record);
  }

  // Split by SESSION (the sharding unit — splitting one session's stream
  // mid-way is outside the Pass contract for order-sensitive passes).
  auto part_a_stats = stats_pass.make_state();
  auto part_b_stats = stats_pass.make_state();
  auto part_a_dup = dup_pass.make_state();
  auto part_b_dup = dup_pass.make_state();
  for (const UpdateRecord& record : records) {
    if (record.session.hash() % 2 == 0) {
      part_a_stats.observe(record);
      part_a_dup.observe(record);
    } else {
      part_b_stats.observe(record);
      part_b_dup.observe(record);
    }
  }
  part_a_stats.merge(std::move(part_b_stats));
  part_a_dup.merge(std::move(part_b_dup));
  EXPECT_TRUE(part_a_stats.report() == whole_stats.report());
  EXPECT_TRUE(part_a_dup.report() == whole_dup.report());
}

// ---------------------------------------------------------------------------
// Driver lifecycle: misuse throws instead of miscounting.

TEST(AnalyticsDriver, LifecycleErrors) {
  AnalysisDriver driver;
  auto handle = driver.add(ClassifierPass{});
  IngestOptions options;
  driver.attach(options);
  // Registration after observation started: refused.
  EXPECT_THROW((void)driver.add(ClassifierPass{}), ConfigError);

  UpdateRecord record;
  record.session = core::SessionKey{"rrc00", Asn(65001),
                                    IpAddress::from_string("10.0.0.1")};
  record.prefix = Prefix::from_string("10.0.0.0/16");
  driver.observe(record);
  ClassifierPass::Report report = driver.report(handle);
  EXPECT_EQ(report.streams, 1u);
  // Reports are re-redeemable; observation after report() is not.
  EXPECT_EQ(driver.report(handle).counts.first_sightings, 1u);
  EXPECT_THROW(driver.observe(record), ConfigError);
  // Registration after report(): refused (a handle minted now would
  // index past the merged state set).
  EXPECT_THROW((void)driver.add(CommunityStatsPass{}), ConfigError);
}

// A still-attached IngestOptions reused after report() must surface the
// contract violation as ConfigError from the ingest call — not an
// out-of-range crash on a worker thread.
TEST(AnalyticsDriver, ReattachedOptionsAfterReportThrow) {
  ArchiveGenerator gen(11);
  std::string archive = gen.generate(100);
  AnalysisDriver driver;
  auto handle = driver.add(ClassifierPass{});
  IngestOptions options;
  options.num_threads = 2;
  driver.attach(options);
  {
    std::istringstream in(archive);
    (void)core::ingest_mrt_stream("rrc00", in, options);
  }
  EXPECT_GT(driver.report(handle).streams, 0u);
  std::istringstream again(archive);
  EXPECT_THROW((void)core::ingest_mrt_stream("rrc00", again, options),
               ConfigError);
}

TEST(AnalyticsDriver, ForeignHandleThrows) {
  AnalysisDriver a;
  AnalysisDriver b;
  (void)a.add(TomographyPass{});
  auto foreign = b.add(ClassifierPass{});
  // In-range index, wrong driver: refused instead of reading the wrong
  // pass's state through the wrong type.
  EXPECT_THROW((void)a.report(foreign), ConfigError);
}

TEST(AnalyticsDriver, EmptyDriverReportsEmpty) {
  AnalysisDriver driver;
  auto handle = driver.add(ClassifierPass{});
  ClassifierPass::Report report = driver.report(handle);
  EXPECT_EQ(report.streams, 0u);
  EXPECT_EQ(report.counts.total(), 0u);
}

}  // namespace
}  // namespace bgpcc::analytics
