// Unit tests: scheduler and network fabric.
#include <gtest/gtest.h>

#include "netbase/error.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace bgpcc::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler sched(Timestamp::from_unix_seconds(0));
  std::vector<int> order;
  sched.at(Timestamp::from_unix_seconds(3), [&] { order.push_back(3); });
  sched.at(Timestamp::from_unix_seconds(1), [&] { order.push_back(1); });
  sched.at(Timestamp::from_unix_seconds(2), [&] { order.push_back(2); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), Timestamp::from_unix_seconds(3));
}

TEST(Scheduler, FifoAtEqualTimestamps) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.at(Timestamp::from_unix_seconds(1), [&order, i] {
      order.push_back(i);
    });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler sched;
  int fired = 0;
  sched.at(Timestamp::from_unix_seconds(1), [&] {
    ++fired;
    sched.after(Duration::seconds(1), [&] { ++fired; });
  });
  EXPECT_EQ(sched.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), Timestamp::from_unix_seconds(2));
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched(Timestamp::from_unix_seconds(100));
  bool fired = false;
  sched.at(Timestamp::from_unix_seconds(1), [&] { fired = true; });
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), Timestamp::from_unix_seconds(100));
}

TEST(Scheduler, RunUntilStopsAndAdvancesClock) {
  Scheduler sched;
  int fired = 0;
  sched.at(Timestamp::from_unix_seconds(1), [&] { ++fired; });
  sched.at(Timestamp::from_unix_seconds(10), [&] { ++fired; });
  EXPECT_EQ(sched.run_until(Timestamp::from_unix_seconds(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), Timestamp::from_unix_seconds(5));
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Network, MessageDelayIsApplied) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  SessionOptions options;
  options.delay = Duration::millis(250);
  net.add_session("A", "C", options);
  net.start();
  Timestamp origin_time = net.now() + Duration::seconds(1);
  net.scheduler().at(origin_time, [&] {
    a.originate(Prefix::from_string("10.0.0.0/8"), net.now());
  });
  net.run();
  const auto& messages = net.collector("C").messages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ((messages[0].time - origin_time).count_micros(),
            Duration::millis(250).count_micros());
}

TEST(Network, InFlightMessagesDroppedOnSessionReset) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  SessionOptions slow;
  slow.delay = Duration::seconds(5);
  std::uint32_t ab = net.add_session("A", "B", slow);
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    a.originate(Prefix::from_string("10.0.0.0/8"), net.now());
  });
  // Flap while the update is in flight: it must be discarded (epoch guard).
  net.schedule_session_down(ab, net.now() + Duration::seconds(2));
  net.schedule_session_up(ab, net.now() + Duration::seconds(3));
  net.run();
  // After the reset, the session-up refresh re-delivers the route.
  EXPECT_NE(net.router("B").loc_rib().find(Prefix::from_string("10.0.0.0/8")),
            nullptr);
  // The stale copy would have been a duplicate; the epoch guard means B
  // received exactly one announcement.
  EXPECT_EQ(net.router("B").stats().announcements_received, 1u);
}

TEST(Network, TapsObserveMessages) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  std::uint32_t ab = net.add_session("A", "B");
  int seen = 0;
  net.tap_session(ab, [&](Timestamp, const std::string& from,
                          const std::string& to, const UpdateMessage&) {
    EXPECT_EQ(from, "A");
    EXPECT_EQ(to, "B");
    ++seen;
  });
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    a.originate(Prefix::from_string("10.0.0.0/8"), net.now());
  });
  net.run();
  EXPECT_EQ(seen, 1);
}

TEST(Network, DuplicateNodeNamesRejected) {
  Network net;
  net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  EXPECT_THROW(net.add_router("A", Asn(200), VendorProfile::cisco_ios()),
               ConfigError);
  EXPECT_THROW(net.add_collector("A", Asn(300)), ConfigError);
}

TEST(Network, CollectorOnlySessionRejected) {
  Network net;
  net.add_collector("C1", Asn(65000));
  net.add_collector("C2", Asn(65001));
  EXPECT_THROW(net.add_session("C1", "C2"), ConfigError);
}

TEST(Network, UnknownSessionIdRejected) {
  Network net;
  EXPECT_THROW(net.set_session_state(1, true), ConfigError);
  EXPECT_THROW(net.tap_session(7, {}), ConfigError);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    Network net;
    Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
    net.add_router("B", Asn(200), VendorProfile::cisco_ios());
    net.add_collector("C", Asn(65000));
    net.add_session("A", "B");
    net.add_session("B", "C");
    net.start();
    for (int i = 1; i <= 10; ++i) {
      net.scheduler().at(net.now() + Duration::seconds(i), [&a, &net, i] {
        PathAttributes base;
        base.communities.add(Community::of(100, static_cast<std::uint16_t>(i)));
        a.originate(Prefix::from_string("10.0.0.0/8"), net.now(),
                    std::move(base));
      });
    }
    net.run();
    std::string log;
    for (const RecordedMessage& m : net.collector("C").messages()) {
      log += std::to_string(m.time.unix_micros()) + "|" + m.update.summary() +
             "\n";
    }
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace bgpcc::sim
