// Unit + property tests: prefix trie.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "rib/trie.h"

namespace bgpcc {
namespace {

TEST(Trie, InsertFindErase) {
  PrefixTrie<int> trie;
  Prefix p = Prefix::from_string("10.0.0.0/8");
  EXPECT_TRUE(trie.insert(p, 1));
  EXPECT_FALSE(trie.insert(p, 2));  // overwrite, not new
  ASSERT_NE(trie.find(p), nullptr);
  EXPECT_EQ(*trie.find(p), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.erase(p));
  EXPECT_FALSE(trie.erase(p));
  EXPECT_EQ(trie.find(p), nullptr);
  EXPECT_TRUE(trie.empty());
}

TEST(Trie, ExactMatchOnly) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("10.0.0.0/8"), 8);
  EXPECT_EQ(trie.find(Prefix::from_string("10.0.0.0/16")), nullptr);
  EXPECT_EQ(trie.find(Prefix::from_string("10.0.0.0/7")), nullptr);
}

TEST(Trie, DefaultRouteAtRoot) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("0.0.0.0/0"), 42);
  ASSERT_NE(trie.find(Prefix::from_string("0.0.0.0/0")), nullptr);
  auto hit = trie.lookup(IpAddress::from_string("8.8.8.8"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 42);
}

TEST(Trie, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("10.0.0.0/8"), 8);
  trie.insert(Prefix::from_string("10.1.0.0/16"), 16);
  trie.insert(Prefix::from_string("10.1.2.0/24"), 24);

  auto hit = trie.lookup(IpAddress::from_string("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 24);

  hit = trie.lookup(IpAddress::from_string("10.1.9.1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 16);

  hit = trie.lookup(IpAddress::from_string("10.9.9.9"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 8);

  EXPECT_FALSE(trie.lookup(IpAddress::from_string("11.0.0.1")).has_value());
}

TEST(Trie, LookupReturnsMatchedPrefix) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("10.1.0.0/16"), 1);
  auto hit = trie.lookup(IpAddress::from_string("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, Prefix::from_string("10.1.0.0/16"));
}

TEST(Trie, FamiliesDoNotMix) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("10.0.0.0/8"), 4);
  trie.insert(Prefix::from_string("2001:db8::/32"), 6);
  EXPECT_EQ(trie.size(), 2u);
  EXPECT_FALSE(trie.lookup(IpAddress::from_string("2001:db9::1")).has_value());
  auto hit = trie.lookup(IpAddress::from_string("2001:db8::1"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 6);
}

TEST(Trie, IterationOrderAndKeys) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("10.1.0.0/16"), 0);
  trie.insert(Prefix::from_string("10.0.0.0/8"), 0);
  trie.insert(Prefix::from_string("9.0.0.0/8"), 0);
  trie.insert(Prefix::from_string("2001:db8::/32"), 0);
  auto keys = trie.keys();
  ASSERT_EQ(keys.size(), 4u);
  // v4 first, shorter-at-prefix-position before longer, address order.
  EXPECT_EQ(keys[0], Prefix::from_string("9.0.0.0/8"));
  EXPECT_EQ(keys[1], Prefix::from_string("10.0.0.0/8"));
  EXPECT_EQ(keys[2], Prefix::from_string("10.1.0.0/16"));
  EXPECT_EQ(keys[3], Prefix::from_string("2001:db8::/32"));
}

TEST(Trie, ForEachMutable) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("10.0.0.0/8"), 1);
  trie.insert(Prefix::from_string("11.0.0.0/8"), 2);
  trie.for_each_mutable([](const Prefix&, int& v) { v *= 10; });
  EXPECT_EQ(*trie.find(Prefix::from_string("10.0.0.0/8")), 10);
  EXPECT_EQ(*trie.find(Prefix::from_string("11.0.0.0/8")), 20);
}

TEST(Trie, Clear) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::from_string("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.find(Prefix::from_string("10.0.0.0/8")), nullptr);
}

// Property test: the trie agrees with std::map under a random workload.
class TrieRandomSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TrieRandomSweep, MatchesReferenceMap) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> addr_dist;
  std::uniform_int_distribution<int> len_dist(0, 32);
  std::uniform_int_distribution<int> op_dist(0, 2);

  PrefixTrie<std::uint32_t> trie;
  std::map<Prefix, std::uint32_t> reference;

  for (int i = 0; i < 2000; ++i) {
    int len = len_dist(rng);
    Prefix p(IpAddress::v4(addr_dist(rng)).masked(len), len);
    switch (op_dist(rng)) {
      case 0: {
        std::uint32_t value = addr_dist(rng);
        trie.insert(p, value);
        reference[p] = value;
        break;
      }
      case 1: {
        EXPECT_EQ(trie.erase(p), reference.erase(p) > 0);
        break;
      }
      default: {
        auto it = reference.find(p);
        const std::uint32_t* found = trie.find(p);
        if (it == reference.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
  }
  EXPECT_EQ(trie.size(), reference.size());

  // Longest-prefix-match agrees with a linear scan of the reference.
  for (int i = 0; i < 200; ++i) {
    IpAddress addr = IpAddress::v4(addr_dist(rng));
    std::optional<Prefix> expected;
    for (const auto& [prefix, value] : reference) {
      if (prefix.contains(addr) &&
          (!expected || prefix.length() > expected->length())) {
        expected = prefix;
      }
    }
    auto hit = trie.lookup(addr);
    if (!expected) {
      EXPECT_FALSE(hit.has_value());
    } else {
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->first, *expected);
      EXPECT_EQ(*hit->second, reference.at(*expected));
    }
  }

  // Iteration covers exactly the reference keys, in sorted order per family.
  auto keys = trie.keys();
  ASSERT_EQ(keys.size(), reference.size());
  std::size_t index = 0;
  for (const auto& [prefix, value] : reference) {
    (void)value;
    EXPECT_EQ(keys[index++], prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRandomSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace bgpcc
