// Unit + property tests: RFC 4271 decision process.
#include <gtest/gtest.h>

#include <random>

#include "rib/decision.h"

namespace bgpcc {
namespace {

Route make_route(std::uint32_t neighbor_id = 1) {
  Route r;
  r.prefix = Prefix::from_string("203.0.113.0/24");
  r.attrs.as_path = AsPath::sequence({100, 200});
  r.attrs.next_hop = IpAddress::from_string("10.0.0.1");
  r.source.neighbor_id = neighbor_id;
  r.source.peer_asn = Asn(100);
  r.source.peer_address = IpAddress::v4(10, 0, 0, neighbor_id & 0xff);
  r.source.peer_router_id = neighbor_id;
  r.source.ebgp = true;
  r.source.igp_metric = 10;
  return r;
}

TEST(Decision, HigherLocalPrefWins) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.local_pref = 200;
  b.attrs.local_pref = 100;
  // Even against a shorter path.
  b.attrs.as_path = AsPath::sequence({100});
  EXPECT_TRUE(better_route(a, b));
  EXPECT_FALSE(better_route(b, a));
}

TEST(Decision, MissingLocalPrefUsesDefault) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.local_pref.reset();  // default 100
  b.attrs.local_pref = 99;
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, ShorterPathWins) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.as_path = AsPath::sequence({100});
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, PrependingLengthensPath) {
  Route a = make_route(1);
  Route b = make_route(2);
  b.attrs.as_path.prepend(Asn(100), 2);
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, AsSetCountsOne) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.as_path = AsPath::from_string("100 {200 300 400}");  // length 2
  b.attrs.as_path = AsPath::from_string("100 200 300");        // length 3
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, LowerOriginWins) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.origin = Origin::kIgp;
  b.attrs.origin = Origin::kEgp;
  EXPECT_TRUE(better_route(a, b));
  b.attrs.origin = Origin::kIncomplete;
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, MedComparedWithinSameNeighborAs) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.med = 10;
  b.attrs.med = 5;
  EXPECT_TRUE(better_route(b, a));  // lower MED wins (same first AS 100)
}

TEST(Decision, MedIgnoredAcrossNeighborAses) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.as_path = AsPath::sequence({100, 200});
  b.attrs.as_path = AsPath::sequence({150, 200});
  a.attrs.med = 1000;
  b.attrs.med = 0;
  // MED skipped (different neighbor AS); falls through to router id: a wins.
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, AlwaysCompareMedOption) {
  DecisionConfig config;
  config.always_compare_med = true;
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.as_path = AsPath::sequence({100, 200});
  b.attrs.as_path = AsPath::sequence({150, 200});
  a.attrs.med = 1000;
  b.attrs.med = 0;
  EXPECT_TRUE(better_route(b, a, config));
}

TEST(Decision, MissingMedBestByDefault) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.attrs.med.reset();  // treated as 0
  b.attrs.med = 5;
  EXPECT_TRUE(better_route(a, b));

  DecisionConfig worst;
  worst.med_missing_as_worst = true;
  EXPECT_TRUE(better_route(b, a, worst));
}

TEST(Decision, EbgpOverIbgp) {
  Route a = make_route(1);
  Route b = make_route(2);
  b.source.ebgp = false;
  b.source.igp_metric = 0;  // even with a better IGP metric
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, LowerIgpMetricWins) {
  Route a = make_route(1);
  Route b = make_route(2);
  a.source.ebgp = b.source.ebgp = false;
  a.source.igp_metric = 5;
  b.source.igp_metric = 10;
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, RouterIdTieBreak) {
  Route a = make_route(1);  // router id 1
  Route b = make_route(2);  // router id 2
  EXPECT_TRUE(better_route(a, b));
  EXPECT_FALSE(better_route(b, a));
}

TEST(Decision, PeerAddressFinalTieBreak) {
  Route a = make_route(1);
  Route b = make_route(2);
  b.source.peer_router_id = a.source.peer_router_id;
  // a has the lower peer address (10.0.0.1 < 10.0.0.2).
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, SelectBestEmpty) {
  EXPECT_EQ(select_best({}), nullptr);
}

TEST(Decision, SelectBestFindsMinimum) {
  std::vector<Route> routes;
  for (std::uint32_t i = 1; i <= 5; ++i) routes.push_back(make_route(i));
  routes[3].attrs.local_pref = 500;
  const Route* best = select_best(routes);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->source.neighbor_id, 4u);
}

// Property: with always-compare-med, better_route is a strict weak
// ordering over random routes (irreflexive, asymmetric, transitive on all
// sampled triples). The default same-neighbor-AS MED rule is famously
// non-transitive — that anomaly is BGP's, not this implementation's — so
// the default config is only checked for irreflexivity and asymmetry.
class DecisionOrderSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DecisionOrderSweep, StrictWeakOrdering) {
  DecisionConfig config;
  config.always_compare_med = true;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> small(0, 3);
  std::uniform_int_distribution<std::uint32_t> wide(1, 4);

  auto random_route = [&] {
    Route r = make_route(wide(rng));
    if (small(rng) == 0) r.attrs.local_pref = 100 + 10 * small(rng);
    std::vector<Asn> hops;
    int len = 1 + small(rng);
    for (int i = 0; i < len; ++i) hops.emplace_back(100 + 50 * small(rng));
    r.attrs.as_path = AsPath::sequence(hops);
    r.attrs.origin = static_cast<Origin>(small(rng) % 3);
    if (small(rng) == 0) r.attrs.med = small(rng);
    r.source.ebgp = small(rng) != 0;
    r.source.igp_metric = wide(rng);
    r.source.peer_router_id = wide(rng);
    r.source.peer_address = IpAddress::v4(10, 0, 0, wide(rng) & 0xff);
    r.source.neighbor_id = wide(rng);
    return r;
  };

  std::vector<Route> routes;
  for (int i = 0; i < 40; ++i) routes.push_back(random_route());

  for (const Route& a : routes) {
    // Default config: irreflexive and asymmetric.
    EXPECT_FALSE(better_route(a, a));
    EXPECT_FALSE(better_route(a, a, config));
    for (const Route& b : routes) {
      if (better_route(a, b)) {
        EXPECT_FALSE(better_route(b, a));
      }
      // Transitivity only holds under always-compare-med.
      for (const Route& c : routes) {
        if (better_route(a, b, config) && better_route(b, c, config)) {
          EXPECT_TRUE(better_route(a, c, config));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecisionOrderSweep,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace bgpcc
