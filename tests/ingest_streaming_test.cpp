// Differential tests for the streaming windowed engine and the
// transparent gzip/bz2 input layer: the same seeded archive ingested
// with any window size (1 chunk, 1 file, unbounded), any thread count,
// spilled to disk or buffered in memory, compressed or raw, must produce
// byte-identical record streams, identical cleaning reports, and
// identical deterministic stats — the batch path is just the
// one-window special case of the same core.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "mrt/mrt.h"
#include "mrt/source.h"
#include "netbase/error.h"
#include "sim/collector.h"

namespace bgpcc::core {
namespace {

struct GenPeer {
  Asn asn;
  IpAddress ip;
  bool extended_time;
  bool as4;
};

/// Seeded archive generator (same shape as ingest_differential_test's):
/// per-record byte strings with bursty same-second ties, sub-second
/// stamps, a route-server session, and unallocated resources, so every
/// cleaning kernel is on the window-boundary path. The bursty clock only
/// moves forward, so each session's second-granularity timestamps are
/// non-decreasing in arrival order — the documented streaming-cleaning
/// invariant real collector dumps satisfy.
class ArchiveGenerator {
 public:
  explicit ArchiveGenerator(std::uint32_t seed) : rng_(seed) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      peers_.push_back(GenPeer{Asn(65001 + i), IpAddress::v4(0x0a000001u + i),
                               /*extended_time=*/i % 2 == 0,
                               /*as4=*/i % 3 != 0});
    }
    peers_.push_back(GenPeer{Asn(65010), IpAddress::from_string("10.0.0.9"),
                             /*extended_time=*/true, /*as4=*/true});
  }

  [[nodiscard]] std::vector<std::string> generate(int count) {
    std::vector<std::string> records;
    records.reserve(static_cast<std::size_t>(count));
    Timestamp now = Timestamp::from_unix_seconds(1600000000);
    for (int i = 0; i < count; ++i) {
      if (pick(10) < 4) now = now + Duration::seconds(pick(3) + 1);
      const GenPeer& peer = peers_[pick(peers_.size())];
      Timestamp when = now;
      if (peer.extended_time && pick(2) == 0) {
        when = when + Duration::micros(static_cast<std::int64_t>(pick(999)) *
                                       1000);
      }
      records.push_back(render(peer, when, i));
    }
    return records;
  }

 private:
  std::string render(const GenPeer& peer, Timestamp when, int index) {
    std::ostringstream out;
    mrt::Writer writer(out);
    UpdateMessage update;
    if (pick(4) == 0) {
      update.withdrawn.push_back(random_prefix());
    } else {
      std::size_t prefixes = 1 + pick(3);
      for (std::size_t p = 0; p < prefixes; ++p) {
        update.announced.push_back(random_prefix());
      }
      PathAttributes attrs;
      attrs.as_path = random_path();
      attrs.next_hop = IpAddress::from_string("192.0.2.1");
      if (pick(2) == 0) {
        attrs.communities.add(Community::of(
            65100, static_cast<std::uint16_t>(100 + index % 50)));
      }
      update.attrs = std::move(attrs);
    }
    CodecOptions codec;
    codec.four_byte_asn = peer.as4;
    mrt::Bgp4mpMessage message;
    message.peer_asn = peer.asn;
    message.local_asn = Asn(64512);
    message.peer_ip = peer.ip;
    message.local_ip = IpAddress::from_string("203.0.113.1");
    message.bgp_message = encode_update(update, codec);
    writer.write_message(when, message, peer.extended_time, peer.as4);
    return out.str();
  }

  Prefix random_prefix() {
    if (pick(8) == 0) {
      return Prefix(IpAddress::v4(0xc0a80000u + (pick(16) << 8)), 24);
    }
    return Prefix(IpAddress::v4(0x0a000000u + (pick(4096) << 12)), 20);
  }

  AsPath random_path() {
    std::vector<Asn> hops;
    hops.push_back(Asn(65001 + pick(5)));
    std::size_t extra = 1 + pick(3);
    for (std::size_t h = 0; h < extra; ++h) {
      hops.push_back(Asn(65100 + pick(3)));
    }
    if (pick(10) == 0) hops.push_back(Asn(65999));
    return AsPath::sequence(hops);
  }

  std::uint32_t pick(std::size_t bound) {
    return static_cast<std::uint32_t>(rng_() % bound);
  }

  std::mt19937 rng_;
  std::vector<GenPeer> peers_;
};

Registry allocated_registry() {
  Registry registry;
  for (std::uint32_t asn = 65001; asn <= 65010; ++asn) {
    registry.allocate_asn(Asn(asn));
  }
  for (std::uint32_t asn : {65100u, 65101u, 65102u}) {
    registry.allocate_asn(Asn(asn));
  }
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));
  return registry;
}

CleaningOptions cleaning_options(const Registry& registry) {
  CleaningOptions options;
  options.registry = &registry;
  options.route_servers.emplace_back(IpAddress::from_string("10.0.0.9"),
                                     Asn(65010));
  return options;
}

std::vector<std::string> split_archives(const std::vector<std::string>& records,
                                        std::size_t k) {
  std::vector<std::string> parts(k);
  std::size_t n = records.size();
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = p * n / k; i < (p + 1) * n / k; ++i) {
      parts[p] += records[i];
    }
  }
  return parts;
}

void expect_identical(const IngestResult& x, const IngestResult& y) {
  ASSERT_EQ(x.stream.size(), y.stream.size());
  EXPECT_TRUE(x.stream.records() == y.stream.records());
  EXPECT_EQ(x.cleaning.dropped_unallocated_asn,
            y.cleaning.dropped_unallocated_asn);
  EXPECT_EQ(x.cleaning.dropped_unallocated_prefix,
            y.cleaning.dropped_unallocated_prefix);
  EXPECT_EQ(x.cleaning.route_server_paths_repaired,
            y.cleaning.route_server_paths_repaired);
  EXPECT_EQ(x.cleaning.timestamps_adjusted, y.cleaning.timestamps_adjusted);
  EXPECT_EQ(x.stats.raw_records, y.stats.raw_records);
  EXPECT_EQ(x.stats.update_messages, y.stats.update_messages);
  EXPECT_EQ(x.stats.records, y.stats.records);
  EXPECT_EQ(x.stats.chunks, y.stats.chunks);
}

IngestResult streaming_ingest(const std::vector<std::string>& parts,
                              const IngestOptions& options) {
  std::vector<std::istringstream> streams;
  streams.reserve(parts.size());
  for (const std::string& part : parts) streams.emplace_back(part);
  StreamingIngestor engine(options);
  for (std::istringstream& in : streams) engine.add_stream("C1", in);
  return engine.finish();
}

std::size_t spill_files_in(const std::string& dir) {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".spill") ++count;
  }
  return count;
}

// The acceptance matrix: window ∈ {1 chunk, ~1 file, unbounded-windowed,
// batch} × threads ∈ {1, 4} × {in-memory, spill-to-disk}, all compared
// against the sequential batch reference — including cleaning reports,
// so window-boundary session-state carry-over is provably exact.
TEST(IngestStreaming, WindowThreadSpillEquivalence) {
  for (std::uint32_t seed : {3u, 21u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ArchiveGenerator gen(seed);
    std::vector<std::string> records = gen.generate(400);
    Registry registry = allocated_registry();
    CleaningOptions cleaning = cleaning_options(registry);
    std::vector<std::string> parts = split_archives(records, 3);

    IngestOptions reference_options;
    reference_options.num_threads = 1;
    reference_options.chunk_records = 16;
    reference_options.cleaning = &cleaning;
    IngestResult reference = streaming_ingest(parts, reference_options);
    ASSERT_GT(reference.stream.size(), 0u);
    EXPECT_EQ(reference.stats.windows, 1u);

    // 16 records ≈ one chunk per window; ~140 ≈ one file per window; a
    // huge budget runs the windowed machinery with a single window.
    for (std::size_t window :
         {std::size_t{16}, std::size_t{140}, std::size_t{1} << 40}) {
      for (unsigned threads : {1u, 4u}) {
        for (bool spill : {false, true}) {
          for (bool pipeline : {false, true}) {
            SCOPED_TRACE("window=" + std::to_string(window) +
                         " threads=" + std::to_string(threads) +
                         " spill=" + std::to_string(spill) +
                         " pipeline=" + std::to_string(pipeline));
            IngestOptions options = reference_options;
            options.num_threads = threads;
            options.window_records = window;
            options.pipeline_windows = pipeline;
            std::string spill_dir;
            if (spill) {
              spill_dir = ::testing::TempDir() + "/bgpcc_spill_" +
                          std::to_string(seed) + "_" + std::to_string(window) +
                          "_" + std::to_string(threads) + "_" +
                          std::to_string(pipeline);
              options.spill_dir = spill_dir;
            }
            IngestResult result = streaming_ingest(parts, options);
            expect_identical(reference, result);
            if (window == std::size_t{16}) {
              EXPECT_GT(result.stats.windows, 1u);
            }
            if (spill) {
              EXPECT_EQ(spill_files_in(spill_dir), 0u)
                  << "spill runs must be removed after the merge";
            }
          }
        }
      }
    }
  }
}

// The pipelining worst case: window_records=1 puts every chunk in its
// own window, so the prefetch framer is re-armed on every poll and the
// processed window / prefetched window hand-off happens hundreds of
// times. Differential equality vs the sequential batch reference across
// threads × pipelining; with chunk_records=1 this is also the TSan
// stress target for the pool-based window machinery (many tiny decode
// tasks racing the shard-clean/merge stages of the previous window).
TEST(IngestStreaming, TinyWindowsPipeliningMatrix) {
  ArchiveGenerator gen(47);
  std::vector<std::string> records = gen.generate(300);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);
  std::vector<std::string> parts = split_archives(records, 2);

  IngestOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.chunk_records = 1;
  reference_options.cleaning = &cleaning;
  IngestResult reference = streaming_ingest(parts, reference_options);
  ASSERT_GT(reference.stream.size(), 0u);

  for (unsigned threads : {1u, 4u}) {
    for (bool pipeline : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " pipeline=" + std::to_string(pipeline));
      IngestOptions options = reference_options;
      options.num_threads = threads;
      options.window_records = 1;
      options.pipeline_windows = pipeline;
      IngestResult result = streaming_ingest(parts, options);
      expect_identical(reference, result);
      EXPECT_GT(result.stats.windows, 100u);
    }
  }
}

// poll() is incremental: each call processes exactly one window, stats()
// advance monotonically, and finish() after a poll loop (or a partial
// one) produces the same stream as batch.
TEST(IngestStreaming, PollDrivesWindowsIncrementally) {
  ArchiveGenerator gen(13);
  std::vector<std::string> records = gen.generate(200);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);
  std::vector<std::string> parts = split_archives(records, 2);

  IngestOptions batch_options;
  batch_options.num_threads = 1;
  batch_options.chunk_records = 16;
  batch_options.cleaning = &cleaning;
  IngestResult reference = streaming_ingest(parts, batch_options);

  IngestOptions options = batch_options;
  options.window_records = 64;
  std::vector<std::istringstream> streams;
  for (const std::string& part : parts) streams.emplace_back(part);
  StreamingIngestor engine(options);
  for (std::istringstream& in : streams) engine.add_stream("C1", in);

  std::size_t polls = 0;
  std::size_t last_raw = 0;
  while (engine.poll()) {
    ++polls;
    EXPECT_EQ(engine.stats().windows, polls);
    EXPECT_GT(engine.stats().raw_records, last_raw);
    last_raw = engine.stats().raw_records;
  }
  EXPECT_GT(polls, 1u);
  EXPECT_EQ(last_raw, reference.stats.raw_records);

  IngestResult result = engine.finish();
  expect_identical(reference, result);
  EXPECT_EQ(result.stats.windows, polls);
}

// The callback-sink variant emits the records in exactly the final
// stream order, without materializing them.
TEST(IngestStreaming, SinkEmitsFinalOrder) {
  ArchiveGenerator gen(29);
  std::vector<std::string> records = gen.generate(150);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);
  std::vector<std::string> parts = split_archives(records, 2);

  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 8;
  options.cleaning = &cleaning;
  IngestResult reference = streaming_ingest(parts, options);

  options.window_records = 32;
  std::vector<std::istringstream> streams;
  for (const std::string& part : parts) streams.emplace_back(part);
  StreamingIngestor engine(options);
  for (std::istringstream& in : streams) engine.add_stream("C1", in);
  std::vector<UpdateRecord> emitted;
  IngestResult result = engine.finish(
      [&](UpdateRecord&& record) { emitted.push_back(std::move(record)); });
  EXPECT_EQ(result.stream.size(), 0u);
  EXPECT_TRUE(emitted == reference.stream.records());
  EXPECT_EQ(result.stats.records, reference.stats.records);
}

// A same-second burst of one session sliced across window boundaries:
// the carry-over state must space the burst exactly as one batch pass
// (window_records=1 puts every record in its own window — the worst
// case).
TEST(IngestStreaming, SecondGranularityCarryAcrossWindows) {
  sim::RouteCollector collector("rrc00", Asn(64512),
                                IpAddress::from_string("203.0.113.1"));
  Timestamp base = Timestamp::from_unix_seconds(1600000000);
  for (int i = 0; i < 40; ++i) {
    UpdateMessage update;
    update.announced.push_back(
        Prefix(IpAddress::v4(0x0a000000u +
                             (static_cast<std::uint32_t>(i % 8) << 12)),
               20));
    PathAttributes attrs;
    attrs.as_path = AsPath::sequence({65001, 65100});
    attrs.next_hop = IpAddress::from_string("192.0.2.1");
    update.attrs = std::move(attrs);
    // 10-record same-second bursts on one session.
    collector.record(base + Duration::seconds(i / 10), 0, Asn(65001),
                     IpAddress::v4(0x0a000001u), update);
  }
  std::ostringstream archive;
  collector.write_mrt(archive, /*extended_time=*/false);

  CleaningOptions cleaning;  // timestamp repair only
  IngestOptions batch_options;
  batch_options.num_threads = 1;
  batch_options.chunk_records = 1;
  batch_options.cleaning = &cleaning;
  IngestResult reference =
      streaming_ingest({archive.str()}, batch_options);
  ASSERT_GT(reference.cleaning.timestamps_adjusted, 0u);

  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    IngestOptions options = batch_options;
    options.num_threads = threads;
    options.window_records = 1;
    IngestResult result = streaming_ingest({archive.str()}, options);
    expect_identical(reference, result);
    EXPECT_EQ(result.stats.windows, 40u);
  }
}

// gzip and bzip2 archives — in-memory streams and files, including a
// multi-member gzip produced by concatenating two compressed halves —
// ingest to the same records as their uncompressed originals.
TEST(IngestStreaming, CompressedInputMatchesUncompressed) {
  if (!mrt::gzip_supported() || !mrt::bzip2_supported()) {
    GTEST_SKIP() << "built without zlib/libbz2";
  }
  ArchiveGenerator gen(17);
  std::vector<std::string> records = gen.generate(250);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);
  std::string archive = split_archives(records, 1)[0];

  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 16;
  options.cleaning = &cleaning;
  IngestResult reference = streaming_ingest({archive}, options);
  ASSERT_GT(reference.stream.size(), 0u);

  std::string gz = mrt::gzip_compress(archive);
  std::string bz2 = mrt::bzip2_compress(archive);
  ASSERT_EQ(mrt::detect_compression(
                reinterpret_cast<const std::uint8_t*>(gz.data()), gz.size()),
            mrt::Compression::kGzip);
  ASSERT_EQ(mrt::detect_compression(
                reinterpret_cast<const std::uint8_t*>(bz2.data()), bz2.size()),
            mrt::Compression::kBzip2);

  // Multi-member gzip: two members whose decompressed concatenation is
  // the archive (the `cat a.gz b.gz` / pigz shape).
  std::string multi_member =
      mrt::gzip_compress(archive.substr(0, archive.size() / 2)) +
      mrt::gzip_compress(archive.substr(archive.size() / 2));

  for (const std::string* compressed : {&gz, &bz2, &multi_member}) {
    expect_identical(reference, streaming_ingest({*compressed}, options));
  }

  // Through the filesystem front-end, with mixed compression per source.
  std::string dir = ::testing::TempDir();
  std::string gz_path = dir + "/bgpcc_streaming_in.gz";
  std::string bz2_path = dir + "/bgpcc_streaming_in.bz2";
  std::string raw_path = dir + "/bgpcc_streaming_in.mrt";
  std::vector<std::pair<std::string, std::string>> fixtures{
      {gz_path, gz}, {bz2_path, bz2}, {raw_path, archive}};
  for (const auto& [path, payload] : fixtures) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.write(payload.data(),
                          static_cast<std::streamsize>(payload.size())));
  }
  for (const std::string& path : {gz_path, bz2_path, raw_path}) {
    SCOPED_TRACE(path);
    IngestResult result = ingest_mrt_file("C1", path, options);
    expect_identical(reference, result);
  }

  // Mixed sources in one run: a raw part followed by compressed parts
  // must interleave exactly like three raw parts.
  std::vector<std::string> parts = split_archives(records, 3);
  IngestResult raw_parts = streaming_ingest(parts, options);
  IngestResult mixed = streaming_ingest(
      {parts[0], mrt::gzip_compress(parts[1]), mrt::bzip2_compress(parts[2])},
      options);
  expect_identical(raw_parts, mixed);
}

// The full production shape end to end: a collector's log rotated into
// compressed archives on disk, ingested windowed + spilled + parallel,
// equals the uncompressed single-archive batch ingest.
TEST(IngestStreaming, CompressedRotatedArchivesWindowedSpilled) {
  if (!mrt::gzip_supported() || !mrt::bzip2_supported()) {
    GTEST_SKIP() << "built without zlib/libbz2";
  }
  sim::RouteCollector collector("rrc00", Asn(64512),
                                IpAddress::from_string("203.0.113.1"));
  Timestamp base = Timestamp::from_unix_seconds(1600000000);
  for (int i = 0; i < 180; ++i) {
    std::uint32_t session = static_cast<std::uint32_t>(i % 4);
    UpdateMessage update;
    update.announced.push_back(
        Prefix(IpAddress::v4(0x0a000000u +
                             (static_cast<std::uint32_t>(i) << 12)),
               20));
    PathAttributes attrs;
    attrs.as_path = AsPath::sequence({65001 + session, 65100});
    attrs.next_hop = IpAddress::from_string("192.0.2.1");
    update.attrs = std::move(attrs);
    collector.record(base + Duration::millis(i * 3), session,
                     Asn(65001 + session), IpAddress::v4(0x0a000001u + session),
                     update);
  }

  std::string dir = ::testing::TempDir();
  std::string single = dir + "/bgpcc_streaming_single.mrt";
  collector.write_mrt(single, /*extended_time=*/false);

  CleaningOptions cleaning;  // timestamp repair only
  IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 16;
  options.cleaning = &cleaning;
  IngestResult reference = ingest_mrt_file("rrc00", single, options);

  for (mrt::Compression compression :
       {mrt::Compression::kGzip, mrt::Compression::kBzip2}) {
    SCOPED_TRACE(mrt::to_string(compression));
    std::vector<std::string> paths = collector.write_mrt_rotated(
        dir + "/bgpcc_streaming_rot_" + mrt::to_string(compression), 4,
        /*extended_time=*/false, compression);
    ASSERT_EQ(paths.size(), 4u);
    EXPECT_NE(paths[0].find(mrt::compression_suffix(compression)),
              std::string::npos);

    IngestOptions windowed = options;
    windowed.window_records = 32;
    windowed.spill_dir = dir + "/bgpcc_streaming_spill_" +
                         mrt::to_string(compression);
    StreamingIngestor engine(windowed);
    for (const std::string& path : paths) engine.add_file("rrc00", path);
    IngestResult result = engine.finish();
    expect_identical(reference, result);
    EXPECT_GT(result.stats.windows, 1u);
    EXPECT_EQ(spill_files_in(windowed.spill_dir), 0u);
  }
}

// Dual-stack updates leave exploded records whose next_hop family
// disagrees with the prefix family (the MP_REACH next hop overwrites
// the classic one for every record of the message). The spill codec
// must round-trip that verbatim — neither rejecting the record nor
// v4-mapping the address — so spilled and in-memory runs stay
// byte-identical.
TEST(IngestStreaming, DualStackNextHopSurvivesSpill) {
  std::ostringstream archive;
  mrt::Writer writer(archive);
  Timestamp base = Timestamp::from_unix_seconds(1600000000);
  for (int i = 0; i < 24; ++i) {
    UpdateMessage update;
    update.announced.push_back(
        Prefix(IpAddress::v4(0x0a000000u +
                             (static_cast<std::uint32_t>(i) << 12)),
               20));
    update.announced.push_back(Prefix::from_string(
        "2001:db8:" + std::to_string(i) + "::/48"));
    PathAttributes attrs;
    attrs.as_path = AsPath::sequence({65001, 65100});
    attrs.next_hop = IpAddress::from_string("192.0.2.1");
    update.attrs = std::move(attrs);

    mrt::Bgp4mpMessage message;
    message.peer_asn = Asn(65001);
    message.local_asn = Asn(64512);
    message.peer_ip = IpAddress::v4(0x0a000001u);
    message.local_ip = IpAddress::from_string("203.0.113.1");
    message.bgp_message = encode_update(update);
    writer.write_message(base + Duration::seconds(i), message);
  }

  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 4;
  IngestResult reference = streaming_ingest({archive.str()}, options);
  ASSERT_EQ(reference.stream.size(), 48u);
  // The fixture actually produces the family mismatch under test.
  bool mixed_family = false;
  for (const UpdateRecord& record : reference.stream.records()) {
    mixed_family = mixed_family ||
                   (record.prefix.family() != record.attrs.next_hop.family());
  }
  ASSERT_TRUE(mixed_family) << "fixture no longer exercises the dual-stack "
                               "next-hop family mismatch";

  IngestOptions spilled = options;
  spilled.window_records = 8;
  spilled.spill_dir = ::testing::TempDir() + "/bgpcc_dualstack_spill";
  IngestResult result = streaming_ingest({archive.str()}, spilled);
  expect_identical(reference, result);
}

// Misuse guards: finish() twice and poll() after finish() are loud
// ConfigErrors, not silent empties.
TEST(IngestStreaming, LifecycleMisuseThrows) {
  StreamingIngestor engine{IngestOptions{}};
  (void)engine.finish();
  EXPECT_THROW((void)engine.finish(), ConfigError);
  EXPECT_THROW((void)engine.poll(), ConfigError);
}

// A 1250-hop legacy AS path fits the 4096-byte cap at 2 bytes/ASN but
// not at 4: the spill codec must fall back to the (lossless) legacy
// encoding instead of aborting spill-enabled runs that the in-memory
// path handles.
TEST(IngestStreaming, OversizeLegacyPathSurvivesSpill) {
  std::vector<AsPathSegment> segments;
  for (int s = 0; s < 5; ++s) {
    AsPathSegment segment;
    for (int i = 0; i < 250; ++i) {
      segment.asns.push_back(
          Asn(64512u + static_cast<std::uint32_t>((s * 250 + i) % 1000)));
    }
    segments.push_back(std::move(segment));
  }
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("10.1.0.0/16"));
  PathAttributes attrs;
  attrs.as_path = AsPath::from_segments(std::move(segments));
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  update.attrs = std::move(attrs);

  // The fixture must actually force the fallback: the 4-byte re-encode
  // exceeds the BGP cap, the legacy one fits.
  ASSERT_THROW((void)encode_update(update), DecodeError);

  CodecOptions legacy;
  legacy.four_byte_asn = false;
  std::ostringstream archive;
  mrt::Writer writer(archive);
  for (int i = 0; i < 6; ++i) {
    mrt::Bgp4mpMessage message;
    message.peer_asn = Asn(65001);
    message.local_asn = Asn(64512);
    message.peer_ip = IpAddress::v4(0x0a000001u);
    message.local_ip = IpAddress::from_string("203.0.113.1");
    message.bgp_message = encode_update(update, legacy);
    writer.write_message(
        Timestamp::from_unix_seconds(1600000000 + i), message,
        /*extended_time=*/true, /*as4=*/false);
  }

  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 1;
  IngestResult reference = streaming_ingest({archive.str()}, options);
  ASSERT_EQ(reference.stream.size(), 6u);

  IngestOptions spilled = options;
  spilled.window_records = 2;
  spilled.spill_dir = ::testing::TempDir() + "/bgpcc_oversize_spill";
  IngestResult result = streaming_ingest({archive.str()}, spilled);
  expect_identical(reference, result);
}

// A failure while a window's run is being spilled must not leak the
// partially written run file into spill_dir: add_run removes it before
// rethrowing, and the store's destructor removes every completed run.
// The injected failure is a collector name past the spill codec's u16
// length cap — the write throws ConfigError mid-run, after the file has
// already been created.
TEST(IngestStreaming, SpillFailureLeavesDirClean) {
  ArchiveGenerator gen(53);
  std::vector<std::string> records = gen.generate(40);
  std::string archive;
  for (const std::string& record : records) archive += record;

  std::string spill_dir = ::testing::TempDir() + "/bgpcc_spill_failure";
  std::filesystem::create_directories(spill_dir);
  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 4;
  options.window_records = 8;
  options.spill_dir = spill_dir;

  std::string oversize_collector(
      std::numeric_limits<std::uint16_t>::max() + 1, 'c');
  std::istringstream in(archive);
  {
    StreamingIngestor engine(options);
    engine.add_stream(oversize_collector, in);
    EXPECT_THROW((void)engine.finish(), ConfigError);
    EXPECT_EQ(spill_files_in(spill_dir), 0u)
        << "a partial spill run leaked after a mid-write failure";
    // The failed run poisons the ingestor like any other window failure.
    EXPECT_THROW((void)engine.poll(), ConfigError);
  }
  EXPECT_EQ(spill_files_in(spill_dir), 0u)
      << "engine destruction must not resurrect spill files";
}

// Regression for the error path of the shard fan-out: when one shard's
// observer throws, the remaining queued shard jobs must be skipped, not
// executed. The old per-window spawn/join code ran every remaining job
// to completion after the first failure; the pool's failed-group
// short-circuit stops after at most one in-flight job per thread.
TEST(IngestStreaming, ThrowingObserverShortCircuitsShardJobs) {
  ArchiveGenerator gen(59);
  std::vector<std::string> records = gen.generate(200);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);
  std::string archive;
  for (const std::string& record : records) archive += record;

  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 16;
  options.cleaning = &cleaning;

  // Count the non-empty shards a healthy run observes. Four collector
  // names × six peers gives 24 distinct session keys, so the fixture
  // populates most of the 16 shards — "ran every job" and
  // "short-circuited" are unambiguously distinguishable.
  const std::vector<std::string> collectors{"C1", "C2", "C3", "C4"};
  std::atomic<std::size_t> healthy_calls{0};
  {
    IngestOptions counting = options;
    counting.shard_observer = [&healthy_calls](std::size_t,
                                               const std::vector<SeqRecord>&) {
      healthy_calls.fetch_add(1);
    };
    std::vector<std::istringstream> streams;
    streams.reserve(collectors.size());
    for (std::size_t i = 0; i < collectors.size(); ++i) {
      streams.emplace_back(archive);
    }
    StreamingIngestor engine(counting);
    for (std::size_t i = 0; i < collectors.size(); ++i) {
      engine.add_stream(collectors[i], streams[i]);
    }
    (void)engine.finish();
  }
  ASSERT_GT(healthy_calls.load(), 4u);

  // Every observer call throws, so each participating thread stops after
  // its first claimed non-empty shard: with num_threads=2 at most two
  // calls happen before the group fails and the rest are skipped.
  std::atomic<std::size_t> throwing_calls{0};
  IngestOptions throwing = options;
  throwing.shard_observer = [&throwing_calls](std::size_t,
                                              const std::vector<SeqRecord>&) {
    throwing_calls.fetch_add(1);
    throw std::runtime_error("observer rejects the shard");
  };
  std::vector<std::istringstream> streams;
  streams.reserve(collectors.size());
  for (std::size_t i = 0; i < collectors.size(); ++i) {
    streams.emplace_back(archive);
  }
  StreamingIngestor engine(throwing);
  for (std::size_t i = 0; i < collectors.size(); ++i) {
    engine.add_stream(collectors[i], streams[i]);
  }
  EXPECT_THROW((void)engine.finish(), std::runtime_error);
  EXPECT_LE(throwing_calls.load(), 2u)
      << "shard jobs kept running after the group had already failed";
}

// A throwing poll() consumes the aborted window's records, so the
// ingestor must poison itself: finish() after the failure raises
// ConfigError instead of returning a silently incomplete stream.
TEST(IngestStreaming, FailedPollPoisonsIngestor) {
  ArchiveGenerator gen(31);
  std::vector<std::string> records = gen.generate(60);
  std::string archive;
  for (const std::string& record : records) archive += record;
  archive += "\xde\xad\xbe\xef";  // truncated garbage tail

  IngestOptions options;
  options.num_threads = 2;
  options.chunk_records = 4;
  options.window_records = 8;
  std::istringstream in(archive);
  StreamingIngestor engine(options);
  engine.add_stream("C1", in);
  bool threw = false;
  try {
    while (engine.poll()) {
    }
  } catch (const DecodeError&) {
    threw = true;
  }
  ASSERT_TRUE(threw);
  EXPECT_THROW((void)engine.finish(), ConfigError);
  EXPECT_THROW((void)engine.poll(), ConfigError);
}

}  // namespace
}  // namespace bgpcc::core
