// Differential battery for epoch/snapshot reporting
// (AnalysisDriver::snapshot + ReportSnapshot):
//
//   - a snapshot taken at a committed-window boundary equals the final
//     report() of an independent run over the input TRUNCATED at that
//     boundary (prefix-stable ArchiveGenerator makes the truncation
//     exact), for every boundary;
//   - snapshotting never perturbs anything: a run that snapshots after
//     every window reports — and save_state()s, byte for byte — the
//     same as a run that never snapshots, across threads {1,4} ×
//     window {0,64} × pipelining {off,on};
//   - concurrent snapshot-while-ingesting (the TSan target): every
//     snapshot taken from a second thread during a pipelined 4-thread
//     run must equal one of the committed-boundary reference reports —
//     never a half-applied window;
//   - the uniform lifecycle: every entry point called after
//     finalization throws ConfigError naming the offending call;
//   - checkpoint() after snapshot() is byte-identical to one taken on a
//     never-snapshotted run (the epoch counter and snapshot buffers
//     never leak into the wire codec) and resumes exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "archive_gen.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "netbase/error.h"

namespace bgpcc::analytics {
namespace {

using core::CleaningOptions;
using core::IngestOptions;
using core::IngestResult;
using core::Registry;
using core::StreamingIngestor;
using core::archgen::allocated_registry;
using core::archgen::ArchiveGenerator;

struct Handles {
  PassHandle<ClassifierPass> types;
  PassHandle<PerSessionTypesPass> per_session;
  PassHandle<TomographyPass> tomography;
  PassHandle<CommunityStatsPass> communities;
  PassHandle<DuplicateBurstPass> duplicates;
  PassHandle<AnomalyPass> anomaly;
  PassHandle<RevealedPass> revealed;
  PassHandle<ExplorationPass> exploration;
  PassHandle<UsageClassificationPass> usage;
};

Handles add_all_passes(AnalysisDriver& driver) {
  return Handles{driver.add(ClassifierPass{}),
                 driver.add(PerSessionTypesPass{}),
                 driver.add(TomographyPass{}),
                 driver.add(CommunityStatsPass{}),
                 driver.add(DuplicateBurstPass{}),
                 driver.add(AnomalyPass{}),
                 driver.add(RevealedPass{}),
                 driver.add(ExplorationPass{}),
                 driver.add(UsageClassificationPass{})};
}

struct AllReports {
  ClassifierPass::Report types;
  PerSessionTypesPass::Report per_session;
  TomographyPass::Report tomography;
  CommunityStatsPass::Report communities;
  DuplicateBurstPass::Report duplicates;
  AnomalyPass::Report anomaly;
  RevealedPass::Report revealed;
  ExplorationPass::Report exploration;
  UsageClassificationPass::Report usage;

  friend bool operator==(const AllReports&, const AllReports&) = default;
};

AllReports collect(AnalysisDriver& driver, const Handles& handles) {
  return AllReports{driver.report(handles.types),
                    driver.report(handles.per_session),
                    driver.report(handles.tomography),
                    driver.report(handles.communities),
                    driver.report(handles.duplicates),
                    driver.report(handles.anomaly),
                    driver.report(handles.revealed),
                    driver.report(handles.exploration),
                    driver.report(handles.usage)};
}

AllReports collect(const ReportSnapshot& snap, const Handles& handles) {
  return AllReports{snap.report(handles.types),
                    snap.report(handles.per_session),
                    snap.report(handles.tomography),
                    snap.report(handles.communities),
                    snap.report(handles.duplicates),
                    snap.report(handles.anomaly),
                    snap.report(handles.revealed),
                    snap.report(handles.exploration),
                    snap.report(handles.usage)};
}

constexpr std::size_t kRecordsA = 700;
constexpr std::size_t kRecordsB = 500;
constexpr std::uint64_t kSeedA = 20260806;
constexpr std::uint64_t kSeedB = 20260807;

/// Two-collector windowed fixture. ArchiveGenerator is prefix-stable
/// (generate(k) with the same seed yields the first k records of a
/// longer run), so any committed raw-record count can be replayed as an
/// independent truncated input.
struct Fixture {
  std::string archive_a;
  std::string archive_b;
  Registry registry;
  CleaningOptions cleaning;

  Fixture() {
    archive_a = ArchiveGenerator(kSeedA).generate(kRecordsA);
    archive_b = ArchiveGenerator(kSeedB).generate(kRecordsB);
    registry = allocated_registry();
    cleaning.registry = &registry;
  }

  [[nodiscard]] IngestOptions options() const {
    IngestOptions opt;
    opt.chunk_records = 32;
    opt.window_records = 128;
    opt.cleaning = &cleaning;
    return opt;
  }

  struct Run {
    AnalysisDriver driver;
    Handles handles;
    IngestOptions opt;
    std::unique_ptr<std::istringstream> in_a;
    std::unique_ptr<std::istringstream> in_b;
    std::unique_ptr<StreamingIngestor> engine;
  };

  [[nodiscard]] std::unique_ptr<Run> start(IngestOptions opt) const {
    auto run = std::make_unique<Run>();
    run->handles = add_all_passes(run->driver);
    run->opt = std::move(opt);
    run->driver.attach(run->opt);
    run->engine = std::make_unique<StreamingIngestor>(run->opt);
    run->in_a = std::make_unique<std::istringstream>(archive_a);
    run->in_b = std::make_unique<std::istringstream>(archive_b);
    run->engine->add_stream("rrc00", *run->in_a);
    run->engine->add_stream("rrc01", *run->in_b);
    return run;
  }

  [[nodiscard]] std::unique_ptr<Run> start() const { return start(options()); }

  /// An independent run whose input is the fixture input truncated to
  /// the first `raw_records` framed records (the engine frames rrc00
  /// fully before rrc01, so the prefix splits cleanly by count).
  [[nodiscard]] AllReports truncated_report(std::size_t raw_records) const {
    auto run = std::make_unique<Run>();
    run->handles = add_all_passes(run->driver);
    run->opt = options();
    run->driver.attach(run->opt);
    run->engine = std::make_unique<StreamingIngestor>(run->opt);
    std::size_t from_a = raw_records < kRecordsA ? raw_records : kRecordsA;
    run->in_a = std::make_unique<std::istringstream>(
        ArchiveGenerator(kSeedA).generate(from_a));
    run->engine->add_stream("rrc00", *run->in_a);
    if (raw_records > kRecordsA) {
      run->in_b = std::make_unique<std::istringstream>(
          ArchiveGenerator(kSeedB).generate(raw_records - kRecordsA));
      run->engine->add_stream("rrc01", *run->in_b);
    }
    (void)run->engine->finish();
    return collect(run->driver, run->handles);
  }
};

TEST(SnapshotReport, EveryWindowBoundaryEqualsTruncatedRun) {
  Fixture fixture;
  auto run = fixture.start();

  // Boundary 0: a snapshot before any window is the empty report — the
  // same as an independent run over zero records.
  std::vector<std::pair<std::size_t, AllReports>> boundaries;
  {
    ReportSnapshot snap = run->driver.snapshot();
    EXPECT_EQ(snap.epoch(), 1u);
    boundaries.emplace_back(0, collect(snap, run->handles));
  }
  while (run->engine->poll()) {
    ReportSnapshot snap = run->driver.snapshot();
    boundaries.emplace_back(run->engine->stats().raw_records,
                            collect(snap, run->handles));
  }
  ASSERT_GT(boundaries.size(), 4u) << "fixture too small";
  ASSERT_EQ(boundaries.back().first, kRecordsA + kRecordsB);

  for (const auto& [raw, expected] : boundaries) {
    EXPECT_EQ(fixture.truncated_report(raw), expected) << "boundary " << raw;
  }

  // The snapshotted run's finale is untouched by the snapshots and
  // equals the last boundary (all input was already ingested).
  (void)run->engine->finish();
  EXPECT_EQ(collect(run->driver, run->handles), boundaries.back().second);
}

TEST(SnapshotReport, SnapshottingNeverPerturbsTheFinalReport) {
  Fixture fixture;
  for (unsigned threads : {1u, 4u}) {
    for (std::size_t window : {std::size_t{0}, std::size_t{64}}) {
      for (bool pipelining : {false, true}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " window=" +
                     std::to_string(window) + " pipelining=" +
                     std::to_string(pipelining));
        IngestOptions opt = fixture.options();
        opt.num_threads = threads;
        opt.window_records = window;
        opt.pipeline_windows = pipelining;

        // Run A: snapshot at every boundary, twice at the first one.
        auto snapshotted = fixture.start(opt);
        std::uint64_t last_epoch = 0;
        bool doubled = false;
        while (snapshotted->engine->poll()) {
          ReportSnapshot snap = snapshotted->driver.snapshot();
          EXPECT_GT(snap.epoch(), last_epoch);
          last_epoch = snap.epoch();
          if (!doubled) {
            // Back-to-back snapshots: new epoch, identical content.
            ReportSnapshot again = snapshotted->driver.snapshot();
            EXPECT_EQ(again.epoch(), snap.epoch() + 1);
            EXPECT_EQ(collect(again, snapshotted->handles),
                      collect(snap, snapshotted->handles));
            doubled = true;
          }
        }
        (void)snapshotted->engine->finish();
        AllReports with = collect(snapshotted->driver, snapshotted->handles);
        std::ostringstream with_bytes;
        snapshotted->driver.save_state(with_bytes);

        // Run B: identical, but never snapshots.
        auto plain = fixture.start(opt);
        (void)plain->engine->finish();
        AllReports without = collect(plain->driver, plain->handles);
        std::ostringstream without_bytes;
        plain->driver.save_state(without_bytes);

        EXPECT_EQ(with, without);
        EXPECT_EQ(with_bytes.str(), without_bytes.str());
      }
    }
  }
}

TEST(SnapshotReport, ConcurrentSnapshotWhileIngesting) {
  Fixture fixture;
  IngestOptions opt = fixture.options();
  opt.num_threads = 4;
  opt.pipeline_windows = true;

  // Reference: the committed-boundary report set from a sequential run
  // (boundary 0 = the empty state included).
  std::vector<AllReports> committed;
  {
    auto run = fixture.start(opt);
    committed.push_back(collect(run->driver.snapshot(), run->handles));
    while (run->engine->poll()) {
      committed.push_back(collect(run->driver.snapshot(), run->handles));
    }
  }
  ASSERT_GT(committed.size(), 4u);

  // Live run: a second thread snapshots continuously while the main
  // thread polls every window. The committed-window barrier must make
  // every concurrent snapshot land exactly on a boundary.
  auto run = fixture.start(opt);
  std::atomic<bool> stop{false};
  std::vector<std::pair<std::uint64_t, AllReports>> observed;
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed) && observed.size() < 256) {
      ReportSnapshot snap = run->driver.snapshot();
      observed.emplace_back(snap.epoch(), collect(snap, run->handles));
      std::this_thread::yield();
    }
  });
  while (run->engine->poll()) {
  }
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  ASSERT_FALSE(observed.empty());
  std::uint64_t last_epoch = 0;
  for (const auto& [epoch, reports] : observed) {
    EXPECT_GT(epoch, last_epoch) << "epochs must be strictly increasing";
    last_epoch = epoch;
    bool at_boundary = false;
    for (const AllReports& boundary : committed) {
      if (reports == boundary) {
        at_boundary = true;
        break;
      }
    }
    EXPECT_TRUE(at_boundary)
        << "epoch " << epoch << " observed a non-boundary state";
  }

  // And the live run's finale is unperturbed.
  (void)run->engine->finish();
  EXPECT_EQ(collect(run->driver, run->handles), committed.back());
}

TEST(SnapshotReport, EveryEntryPointNamesItselfAfterFinalize) {
  Fixture fixture;
  auto run = fixture.start();
  (void)run->engine->finish();
  ReportSnapshot before = run->driver.snapshot();  // pre-finalize: fine
  AllReports final_reports = collect(run->driver, run->handles);  // finalizes

  auto expect_named = [](const char* call, auto&& fn) {
    try {
      fn();
      ADD_FAILURE() << call << " did not throw after finalization";
    } catch (const ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(call), std::string::npos)
          << call << " error does not name the call: " << e.what();
    }
  };
  AnalysisDriver& d = run->driver;
  expect_named("add()", [&] { (void)d.add(ClassifierPass{}); });
  expect_named("attach()", [&] {
    IngestOptions opt = fixture.options();
    d.attach(opt);
  });
  expect_named("sink()", [&] { (void)d.sink(); });
  expect_named("observe()", [&] { d.observe(core::UpdateRecord{}); });
  expect_named("observe_stream()",
               [&] { d.observe_stream(core::UpdateStream{}); });
  expect_named("snapshot()", [&] { (void)d.snapshot(); });
  expect_named("checkpoint()", [&] {
    std::ostringstream out;
    d.checkpoint(out);
  });
  expect_named("restore()", [&] {
    std::istringstream in("x");
    d.restore(in);
  });
  expect_named("load_state()", [&] {
    std::istringstream in("x");
    d.load_state(in);
  });

  // Finalization never invalidates what was already produced: reports
  // stay redeemable and pre-finalize snapshots stay readable.
  EXPECT_EQ(collect(run->driver, run->handles), final_reports);
  EXPECT_EQ(collect(before, run->handles), final_reports);
}

TEST(SnapshotReport, CheckpointAfterSnapshotIsByteIdenticalAndResumes) {
  Fixture fixture;

  // Uninterrupted reference.
  auto reference = fixture.start();
  (void)reference->engine->finish();
  AllReports expected = collect(reference->driver, reference->handles);

  // Checkpoint bytes after two windows, never snapshotted...
  std::ostringstream plain;
  {
    auto run = fixture.start();
    ASSERT_TRUE(run->engine->poll());
    ASSERT_TRUE(run->engine->poll());
    run->driver.checkpoint(plain, *run->engine);
  }
  // ...versus the same two windows with snapshots before, between, and
  // after: the epoch counter and snapshot buffers must not leak into
  // the v2 codec, so the bytes are identical.
  std::ostringstream snapshotted;
  {
    auto run = fixture.start();
    (void)run->driver.snapshot();
    ASSERT_TRUE(run->engine->poll());
    (void)run->driver.snapshot();
    ASSERT_TRUE(run->engine->poll());
    ReportSnapshot last = run->driver.snapshot();
    EXPECT_EQ(last.epoch(), 3u);
    run->driver.checkpoint(snapshotted, *run->engine);
  }
  EXPECT_EQ(plain.str(), snapshotted.str());

  // And the post-snapshot checkpoint resumes exactly.
  auto resumed = fixture.start();
  std::istringstream in(snapshotted.str());
  resumed->driver.restore(in, *resumed->engine);
  (void)resumed->engine->finish();
  EXPECT_EQ(collect(resumed->driver, resumed->handles), expected);
}

TEST(SnapshotReport, SnapshotOutlivesDriverAndValidatesHandles) {
  Fixture fixture;
  ReportSnapshot survivor;
  Handles handles;
  {
    auto run = fixture.start();
    handles = run->handles;
    (void)run->engine->finish();
    survivor = run->driver.snapshot();
    EXPECT_TRUE(static_cast<bool>(survivor));
    EXPECT_EQ(survivor.size(), 9u);
  }  // driver and engine destroyed

  // The snapshot owns its merged states: still readable.
  AllReports reports = collect(survivor, handles);
  EXPECT_GT(reports.types.counts.total(), 0u);
  EXPECT_EQ(reports, fixture.truncated_report(kRecordsA + kRecordsB));

  // Copies share the same immutable payload.
  ReportSnapshot copy = survivor;
  EXPECT_EQ(copy.epoch(), survivor.epoch());
  EXPECT_EQ(collect(copy, handles), reports);

  // An empty snapshot and a foreign handle both refuse to project.
  ReportSnapshot empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_EQ(empty.epoch(), 0u);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_THROW((void)empty.report(handles.types), ConfigError);
  AnalysisDriver other;
  auto foreign = other.add(ClassifierPass{});
  EXPECT_THROW((void)survivor.report(foreign), ConfigError);
  EXPECT_THROW((void)survivor.report(PassHandle<ClassifierPass>{}),
               ConfigError);
}

TEST(SnapshotReport, SinkAndObserveModesSnapshotToo) {
  // Epoch reporting is not attach()-only: the sink/observe paths take
  // the same barrier per record, so mid-stream snapshots see a record-
  // exact prefix there as well. All comparisons stay within observe
  // mode (the snapshot contract is per execution mode).
  Fixture fixture;
  core::UpdateStream stream;
  {
    auto run = fixture.start(fixture.options());
    IngestResult result = run->engine->finish();
    stream = std::move(result.stream);
  }
  ASSERT_GT(stream.size(), 0u);

  AnalysisDriver driver;
  Handles handles = add_all_passes(driver);
  // `prefix` sees only the first half; `full` sees everything; neither
  // ever snapshots.
  AnalysisDriver prefix;
  Handles prefix_handles = add_all_passes(prefix);
  AnalysisDriver full;
  Handles full_handles = add_all_passes(full);
  for (const core::UpdateRecord& record : stream.records()) {
    full.observe(record);
  }

  std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    driver.observe(stream.records()[i]);
    prefix.observe(stream.records()[i]);
  }
  // Mid-stream snapshot == finalizing report() of the prefix-only run.
  ReportSnapshot mid = driver.snapshot();
  EXPECT_EQ(collect(mid, handles), collect(prefix, prefix_handles));

  // The snapshotted driver keeps absorbing records, and its finale
  // equals the never-snapshotted full run.
  for (std::size_t i = half; i < stream.size(); ++i) {
    driver.observe(stream.records()[i]);
  }
  EXPECT_EQ(collect(driver, handles), collect(full, full_handles));
}

}  // namespace
}  // namespace bgpcc::analytics
