// Unit tests: the §5 announcement-type classifier.
#include <gtest/gtest.h>

#include "core/classifier.h"

namespace bgpcc::core {
namespace {

SessionKey session_a() {
  return SessionKey{"rrc00", Asn(20205), IpAddress::from_string("192.0.2.1")};
}

UpdateRecord make_record(const std::string& path, const std::string& comms,
                         int t = 0, bool announcement = true) {
  UpdateRecord r;
  r.time = Timestamp::from_unix_seconds(t);
  r.session = session_a();
  r.prefix = Prefix::from_string("84.205.64.0/24");
  r.announcement = announcement;
  if (announcement) {
    r.attrs.as_path = AsPath::from_string(path);
    r.attrs.next_hop = IpAddress::from_string("192.0.2.1");
    if (!comms.empty()) {
      std::size_t start = 0;
      while (start < comms.size()) {
        std::size_t end = comms.find(' ', start);
        if (end == std::string::npos) end = comms.size();
        r.attrs.communities.add(
            Community::from_string(comms.substr(start, end - start)));
        start = end + 1;
      }
    }
  }
  return r;
}

TEST(Classifier, FirstSightingIsUntyped) {
  Classifier c;
  EXPECT_EQ(c.classify(make_record("100 200", "")), std::nullopt);
  EXPECT_EQ(c.counts().first_sightings, 1u);
  EXPECT_EQ(c.counts().total(), 0u);
}

TEST(Classifier, AllSixTypes) {
  Classifier c;
  c.classify(make_record("100 200", "100:1"));
  // pc: path and community change.
  EXPECT_EQ(c.classify(make_record("100 300", "100:2")),
            AnnouncementType::kPc);
  // pn: path change only.
  EXPECT_EQ(c.classify(make_record("100 200", "100:2")),
            AnnouncementType::kPn);
  // nc: community change only.
  EXPECT_EQ(c.classify(make_record("100 200", "100:3")),
            AnnouncementType::kNc);
  // nn: no change.
  EXPECT_EQ(c.classify(make_record("100 200", "100:3")),
            AnnouncementType::kNn);
  // xc: prepending-only path change + community change.
  EXPECT_EQ(c.classify(make_record("100 100 200", "100:4")),
            AnnouncementType::kXc);
  // xn: prepending-only path change.
  EXPECT_EQ(c.classify(make_record("100 100 100 200", "100:4")),
            AnnouncementType::kXn);
  EXPECT_EQ(c.counts().total(), 6u);
  for (AnnouncementType t : kAllAnnouncementTypes) {
    EXPECT_EQ(c.counts().count(t), 1u) << label(t);
  }
}

TEST(Classifier, EmptyToEmptyCommunitiesIsNn) {
  // The paper: "nn announcements also include two empty community
  // attributes in succession".
  Classifier c;
  c.classify(make_record("100 200", ""));
  EXPECT_EQ(c.classify(make_record("100 200", "")), AnnouncementType::kNn);
}

TEST(Classifier, WithdrawalDoesNotResetState) {
  // Figure 4: phases open with pc measured against the pre-withdrawal
  // announcement.
  Classifier c;
  c.classify(make_record("100 200", "100:1"));
  c.classify(make_record("", "", 1, /*announcement=*/false));
  EXPECT_EQ(c.counts().withdrawals, 1u);
  EXPECT_EQ(c.classify(make_record("100 300", "100:2")),
            AnnouncementType::kPc);
}

TEST(Classifier, ReAnnouncementAfterWithdrawIdenticalIsNn) {
  Classifier c;
  c.classify(make_record("100 200", "100:1"));
  c.classify(make_record("", "", 1, false));
  EXPECT_EQ(c.classify(make_record("100 200", "100:1")),
            AnnouncementType::kNn);
}

TEST(Classifier, StreamsAreIndependentPerSessionAndPrefix) {
  Classifier c;
  UpdateRecord a = make_record("100 200", "");
  UpdateRecord b = make_record("100 200", "");
  b.session.peer_asn = Asn(20811);
  UpdateRecord d = make_record("100 200", "");
  d.prefix = Prefix::from_string("84.205.65.0/24");
  EXPECT_EQ(c.classify(a), std::nullopt);
  EXPECT_EQ(c.classify(b), std::nullopt);
  EXPECT_EQ(c.classify(d), std::nullopt);
  EXPECT_EQ(c.counts().first_sightings, 3u);
  EXPECT_EQ(c.stream_count(), 3u);
}

TEST(Classifier, MedChangeTrackedWithinNn) {
  Classifier c;
  UpdateRecord first = make_record("100 200", "");
  first.attrs.med = 10;
  c.classify(first);
  UpdateRecord second = make_record("100 200", "");
  second.attrs.med = 20;
  EXPECT_EQ(c.classify(second), AnnouncementType::kNn);
  EXPECT_EQ(c.counts().nn_with_med_change, 1u);
}

TEST(Classifier, SharesSumToOne) {
  Classifier c;
  c.classify(make_record("100 200", "100:1"));
  c.classify(make_record("100 300", "100:2"));
  c.classify(make_record("100 300", "100:3"));
  c.classify(make_record("100 300", "100:3"));
  double sum = 0;
  for (AnnouncementType t : kAllAnnouncementTypes) {
    sum += c.counts().share(t);
  }
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(TypeCounts, Accumulate) {
  TypeCounts a;
  a.add(AnnouncementType::kPc);
  a.withdrawals = 2;
  TypeCounts b;
  b.add(AnnouncementType::kPc);
  b.add(AnnouncementType::kNn);
  b.first_sightings = 1;
  a += b;
  EXPECT_EQ(a.count(AnnouncementType::kPc), 2u);
  EXPECT_EQ(a.count(AnnouncementType::kNn), 1u);
  EXPECT_EQ(a.withdrawals, 2u);
  EXPECT_EQ(a.first_sightings, 1u);
}

TEST(ClassifyStream, CallbackSeesEverything) {
  UpdateStream stream;
  stream.add(make_record("100 200", "100:1"));
  stream.add(make_record("100 200", "100:2", 1));
  stream.add(make_record("", "", 2, false));
  int calls = 0;
  TypeCounts counts = classify_stream(
      stream, [&](const UpdateRecord&, std::optional<AnnouncementType>) {
        ++calls;
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counts.count(AnnouncementType::kNc), 1u);
  EXPECT_EQ(counts.withdrawals, 1u);
}

TEST(PerSessionTypes, SortedByVolumeAndFilteredByPrefix) {
  UpdateStream stream;
  // Session A: 3 announcements of the target prefix.
  stream.add(make_record("100 200", "100:1", 0));
  stream.add(make_record("100 200", "100:2", 1));
  stream.add(make_record("100 200", "100:3", 2));
  // Session B: 2 announcements.
  for (int t = 0; t < 2; ++t) {
    UpdateRecord r = make_record("100 200", "", 10 + t);
    r.session.peer_asn = Asn(20811);
    stream.add(r);
  }
  // A different prefix that must be excluded by the filter.
  UpdateRecord other = make_record("100 900", "", 20);
  other.prefix = Prefix::from_string("10.0.0.0/8");
  stream.add(other);

  auto per_session =
      per_session_types(stream, Prefix::from_string("84.205.64.0/24"));
  ASSERT_EQ(per_session.size(), 2u);
  EXPECT_EQ(per_session[0].first.peer_asn, Asn(20205));
  EXPECT_EQ(per_session[0].second.count(AnnouncementType::kNc), 2u);
  EXPECT_EQ(per_session[1].first.peer_asn, Asn(20811));
  EXPECT_EQ(per_session[1].second.count(AnnouncementType::kNn), 1u);
}

TEST(Labels, AllDistinct) {
  std::set<std::string> labels;
  for (AnnouncementType t : kAllAnnouncementTypes) {
    labels.insert(label(t));
  }
  EXPECT_EQ(labels.size(), 6u);
}

// ---------------------------------------------------------------------------
// Community usage classification (Krenc et al.).

TEST(CommunityUsage, ValueHeuristics) {
  EXPECT_EQ(classify_community_usage(Community::of(3356, 666)),
            CommunityUsage::kBlackhole);
  EXPECT_EQ(classify_community_usage(Community::blackhole()),
            CommunityUsage::kBlackhole);
  EXPECT_EQ(classify_community_usage(Community::no_export()),
            CommunityUsage::kInformational);
  EXPECT_EQ(classify_community_usage(Community::of(3356, 70)),
            CommunityUsage::kTrafficEngineering);
  EXPECT_EQ(classify_community_usage(Community::of(3356, 0)),
            CommunityUsage::kTrafficEngineering);
  EXPECT_EQ(classify_community_usage(Community::of(3356, 2001)),
            CommunityUsage::kLocation);
  EXPECT_EQ(classify_community_usage(Community::of(3356, 501)),
            CommunityUsage::kLocation);
  EXPECT_EQ(classify_community_usage(Community::of(3356, 1500)),
            CommunityUsage::kInformational);
  EXPECT_EQ(classify_community_usage(Community::of(3356, 9000)),
            CommunityUsage::kInformational);
}

TEST(CommunityUsage, NamespaceProfilesAndEvidenceFloor) {
  UpdateStream stream;
  // 3356 tags locations (12 occurrences over 3 values), 174 sends only
  // action codes, 9000 appears once: below the evidence floor.
  for (int i = 0; i < 4; ++i) {
    stream.add(make_record(
        "20205 3356 174", "3356:2001 3356:2002 3356:501 174:80", i));
  }
  stream.add(make_record("20205 9000", "9000:1234", 10));

  UsageOptions options;
  options.min_occurrences = 3;
  auto usage = classify_community_usage_stream(stream, options);
  ASSERT_EQ(usage.size(), 3u);
  // Sorted by occurrences descending.
  EXPECT_EQ(usage[0].asn16, 3356u);
  EXPECT_EQ(usage[0].occurrences, 12u);
  EXPECT_EQ(usage[0].distinct_values, 3u);
  EXPECT_EQ(usage[0].profile, UsageProfile::kLocation);
  EXPECT_EQ(usage[0].sessions, 1u);
  EXPECT_EQ(usage[1].asn16, 174u);
  EXPECT_EQ(usage[1].profile, UsageProfile::kTrafficEngineering);
  EXPECT_EQ(usage[2].asn16, 9000u);
  EXPECT_EQ(usage[2].profile, UsageProfile::kUnclassified);
}

TEST(CommunityUsage, MixedNamespaceNeedsNoDominantCategory) {
  UpdateStream stream;
  // Half location, half TE: no category reaches the 60% default.
  for (int i = 0; i < 5; ++i) {
    stream.add(make_record("20205 3356", "3356:2001 3356:80", i));
  }
  auto usage = classify_community_usage_stream(stream);
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage[0].profile, UsageProfile::kMixed);
  EXPECT_EQ(usage[0].usage_values[static_cast<std::size_t>(
                CommunityUsage::kLocation)],
            1u);
  EXPECT_EQ(usage[0].usage_values[static_cast<std::size_t>(
                CommunityUsage::kTrafficEngineering)],
            1u);
}

TEST(CommunityUsage, EvidenceMergesAcrossSessionPartitions) {
  UpdateRecord a = make_record("20205 3356", "3356:2001 3356:666", 0);
  UpdateRecord b = make_record("20811 3356", "3356:2001 3356:70", 1);
  b.session.peer_asn = Asn(20811);

  UsageEvidence whole;
  accumulate_usage(a, whole);
  accumulate_usage(b, whole);

  UsageEvidence part_a;
  UsageEvidence part_b;
  accumulate_usage(a, part_a);
  accumulate_usage(b, part_b);
  merge_usage(part_a, std::move(part_b));

  UsageOptions options;
  options.min_occurrences = 1;
  EXPECT_TRUE(finalize_usage(part_a, options) ==
              finalize_usage(whole, options));
  auto usage = finalize_usage(part_a, options);
  ASSERT_EQ(usage.size(), 1u);
  EXPECT_EQ(usage[0].sessions, 2u);
  EXPECT_EQ(usage[0].distinct_values, 3u);
}

}  // namespace
}  // namespace bgpcc::core
