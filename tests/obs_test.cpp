// The obs metrics layer, end to end:
//
//   - Counter/Gauge/Histogram aggregation is exact under concurrent
//     writers, including a renderer and late registrations racing the
//     writers (the TSan target);
//   - Histogram bucket edges follow Prometheus `le` semantics (a value
//     on an edge falls into that edge's bucket) and unsorted bounds are
//     rejected at construction;
//   - the Prometheus text and JSON renderings are golden-string exact,
//     including label escaping and the implicit +Inf bucket;
//   - StageTimer observes only when obs::set_enabled(true) is on, and
//     stop() disarms the destructor;
//   - re-registering a (name, labels) pair returns the same instrument,
//     and re-registering a name with a different type throws;
//   - the differential contract: with all nine passes attached, a run
//     with metrics enabled save_state()s — byte for byte — and reports
//     the same as a run with metrics off, across threads {1,4} ×
//     window {0,64} × pipelining {off,on};
//   - IngestStats zero-initializes `files` and every engine path sets
//     it from the real source count (the satellite regression).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "archive_gen.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

namespace bgpcc::obs {
namespace {

// The timing gate is process-global; every test that flips it restores
// the default-off state on every exit path.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(false); }
};

TEST(ObsCounter, AggregatesExactlyUnderConcurrentWriters) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncs = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncs; ++i) counter.inc();
      counter.inc(5);
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(counter.value(), kThreads * (kIncs + 5));
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(ObsGauge, AddSubSetRoundTrip) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.add(3);
  gauge.sub();
  EXPECT_EQ(gauge.value(), 2);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsRegistry, ConcurrentWritersRenderersAndRegistrations) {
  // Writers hammer pre-registered instruments while one thread renders
  // repeatedly and another registers fresh series — the registration
  // lock must make every interleaving safe (this test is in the CI
  // TSan job's target list).
  Registry registry;
  Counter& counter = registry.counter("race_total", "racing counter");
  Histogram& hist = registry.histogram("race_seconds", "racing histogram",
                                       default_duration_buckets());
  constexpr int kWriters = 4;
  constexpr std::uint64_t kOps = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&counter, &hist] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        counter.inc();
        hist.observe(1e-5);
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) {
      std::ostringstream prom;
      registry.render_prometheus(prom);
      std::ostringstream json;
      registry.render_json(json);
    }
  });
  threads.emplace_back([&registry] {
    for (int i = 0; i < 100; ++i) {
      registry.counter("race_labeled_total", "late registrations",
                       {{"i", std::to_string(i)}});
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kWriters * kOps);
  EXPECT_EQ(hist.count(), kWriters * kOps);
}

TEST(ObsHistogram, BucketEdgesFollowLeSemantics) {
  Histogram hist({0.001, 0.01, 0.1});
  hist.observe(0.001);  // exactly on an edge: belongs to that bucket
  hist.observe(0.0015);
  hist.observe(0.1);
  hist.observe(0.25);  // past the last edge: the implicit +Inf bucket
  hist.observe(0.0);
  hist.observe(-1.0);  // negative durations clamp into the first bucket
  EXPECT_EQ(hist.bucket_count(0), 3u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);
  EXPECT_EQ(hist.count(), 6u);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.bucket_count(0), 0u);
}

TEST(ObsHistogram, SumIsExactAcrossExactlyRepresentableObservations) {
  Histogram hist({1.0});
  hist.observe(0.25);
  hist.observe(0.5);
  hist.observe(2.0);
  EXPECT_DOUBLE_EQ(hist.sum(), 2.75);
}

TEST(ObsHistogram, EmptyBoundsMeansEverythingIsPlusInf) {
  Histogram hist({});
  hist.observe(1.0);
  hist.observe(100.0);
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.count(), 2u);
}

TEST(ObsHistogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({0.1, 0.01}), std::invalid_argument);
}

TEST(ObsRegistry, ReregistrationReturnsTheSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("same_total", "help", {{"k", "v"}});
  Counter& b = registry.counter("same_total", "ignored", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.counter("same_total", "help", {{"k", "w"}});
  EXPECT_NE(&a, &other);
  EXPECT_THROW(registry.gauge("same_total", "wrong type"),
               std::invalid_argument);
}

TEST(ObsRender, PrometheusGolden) {
  Registry registry;
  Histogram& hist = registry.histogram("test_latency_seconds",
                                       "Latency of test requests, seconds",
                                       {0.1, 1.0});
  hist.observe(0.05);
  hist.observe(0.5);
  hist.observe(5.0);
  registry.gauge("test_queue_depth", "Queue depth").set(-2);
  registry.counter("test_requests_total", "Requests served",
                   {{"method", "get"}})
      .inc(3);
  registry.counter("test_requests_total", "Requests served",
                   {{"method", "put"}})
      .inc();

  std::ostringstream out;
  registry.render_prometheus(out);
  EXPECT_EQ(out.str(),
            "# HELP test_latency_seconds Latency of test requests, seconds\n"
            "# TYPE test_latency_seconds histogram\n"
            "test_latency_seconds_bucket{le=\"0.1\"} 1\n"
            "test_latency_seconds_bucket{le=\"1\"} 2\n"
            "test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
            "test_latency_seconds_sum 5.55\n"
            "test_latency_seconds_count 3\n"
            "# HELP test_queue_depth Queue depth\n"
            "# TYPE test_queue_depth gauge\n"
            "test_queue_depth -2\n"
            "# HELP test_requests_total Requests served\n"
            "# TYPE test_requests_total counter\n"
            "test_requests_total{method=\"get\"} 3\n"
            "test_requests_total{method=\"put\"} 1\n");
}

TEST(ObsRender, PrometheusEscapesLabelValues) {
  Registry registry;
  registry.counter("test_escapes_total", "", {{"v", "q\"w\\e\nr"}}).inc();
  std::ostringstream out;
  registry.render_prometheus(out);
  EXPECT_EQ(out.str(),
            "# TYPE test_escapes_total counter\n"
            "test_escapes_total{v=\"q\\\"w\\\\e\\nr\"} 1\n");
}

TEST(ObsRender, JsonGolden) {
  Registry registry;
  Histogram& hist = registry.histogram("j_hist_seconds", "H", {0.5});
  hist.observe(0.25);
  hist.observe(1.0);
  registry.counter("j_total", "C", {{"k", "v"}}).inc(7);

  std::ostringstream out;
  registry.render_json(out);
  EXPECT_EQ(
      out.str(),
      "{\"metrics\":["
      "{\"name\":\"j_hist_seconds\",\"type\":\"histogram\",\"help\":\"H\","
      "\"series\":[{\"labels\":{},\"count\":2,\"sum\":1.25,\"buckets\":["
      "{\"le\":0.5,\"count\":1},{\"le\":\"+Inf\",\"count\":2}]}]},"
      "{\"name\":\"j_total\",\"type\":\"counter\",\"help\":\"C\","
      "\"series\":[{\"labels\":{\"k\":\"v\"},\"value\":7}]}"
      "]}");
}

TEST(ObsStageTimer, ObservesOnlyWhenEnabled) {
  Histogram hist(default_duration_buckets());
  {
    StageTimer timer(&hist);  // gate is off: inert
  }
  EXPECT_EQ(hist.count(), 0u);

  {
    EnabledGuard enabled(true);
    { StageTimer timer(&hist); }
    EXPECT_EQ(hist.count(), 1u);
    StageTimer timer(&hist);
    timer.stop();
    timer.stop();  // idempotent; the destructor is disarmed too
    EXPECT_EQ(hist.count(), 2u);
    StageTimer inert(nullptr);  // null histogram is always safe
  }
  EXPECT_FALSE(enabled());
}

TEST(ObsPipelineMetrics, EveryInstrumentIsRegisteredEagerly) {
  const PipelineMetrics& m = pipeline_metrics();
  for (std::size_t c = 0; c < PipelineMetrics::kCodecs; ++c) {
    ASSERT_NE(m.source_opened[c], nullptr);
    ASSERT_NE(m.source_compressed_bytes[c], nullptr);
    ASSERT_NE(m.source_bytes[c], nullptr);
  }
  ASSERT_NE(m.ingest_frame, nullptr);
  ASSERT_NE(m.ingest_window, nullptr);
  ASSERT_NE(m.pool_queue_wait, nullptr);
  ASSERT_NE(m.analysis_epoch, nullptr);
  EXPECT_EQ(&pass_merge_histogram(2), &pass_merge_histogram(2));

  // Eager registration: an exposition taken before any pipeline ran
  // already names every stage, zero-valued — the contract --follow
  // --metrics relies on.
  std::ostringstream out;
  render_prometheus(out);
  const std::string text = out.str();
  for (const char* needle :
       {"bgpcc_ingest_stage_seconds_count{stage=\"frame\"}",
        "bgpcc_ingest_stage_seconds_count{stage=\"decode\"}",
        "bgpcc_ingest_stage_seconds_count{stage=\"clean\"}",
        "bgpcc_ingest_stage_seconds_count{stage=\"observe\"}",
        "bgpcc_ingest_stage_seconds_count{stage=\"merge\"}",
        "bgpcc_analysis_stage_seconds_count{stage=\"snapshot\"}",
        "bgpcc_source_opened_total{codec=\"gzip\"}",
        "bgpcc_pool_queue_wait_seconds_count"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

// ---------------------------------------------------------------------
// The differential contract: metrics never perturb analysis output.

struct AllHandles {
  analytics::PassHandle<analytics::ClassifierPass> types;
  analytics::PassHandle<analytics::PerSessionTypesPass> per_session;
  analytics::PassHandle<analytics::TomographyPass> tomography;
  analytics::PassHandle<analytics::CommunityStatsPass> communities;
  analytics::PassHandle<analytics::DuplicateBurstPass> duplicates;
  analytics::PassHandle<analytics::AnomalyPass> anomaly;
  analytics::PassHandle<analytics::RevealedPass> revealed;
  analytics::PassHandle<analytics::ExplorationPass> exploration;
  analytics::PassHandle<analytics::UsageClassificationPass> usage;
};

AllHandles add_all_passes(analytics::AnalysisDriver& driver) {
  return AllHandles{driver.add(analytics::ClassifierPass{}),
                    driver.add(analytics::PerSessionTypesPass{}),
                    driver.add(analytics::TomographyPass{}),
                    driver.add(analytics::CommunityStatsPass{}),
                    driver.add(analytics::DuplicateBurstPass{}),
                    driver.add(analytics::AnomalyPass{}),
                    driver.add(analytics::RevealedPass{}),
                    driver.add(analytics::ExplorationPass{}),
                    driver.add(analytics::UsageClassificationPass{})};
}

/// One full ingest + analysis run; the returned value is everything an
/// observer could compare: the nine serialized pass states (save_state
/// covers them all, byte for byte) plus the deterministic ingest
/// counters and the cleaned-record count.
struct RunOutput {
  std::string state;
  std::size_t files = 0;
  std::size_t raw_records = 0;
  std::size_t records = 0;
  std::size_t cleaned = 0;

  friend bool operator==(const RunOutput&, const RunOutput&) = default;
};

RunOutput run_pipeline(const std::string& archive_a,
                       const std::string& archive_b,
                       const core::CleaningOptions& cleaning, unsigned threads,
                       std::size_t window, bool pipelining,
                       bool metrics_enabled) {
  EnabledGuard guard(metrics_enabled);
  core::IngestOptions opt;
  opt.num_threads = threads;
  opt.chunk_records = 32;
  opt.window_records = window;
  opt.pipeline_windows = pipelining;
  opt.cleaning = &cleaning;

  analytics::AnalysisDriver driver;
  (void)add_all_passes(driver);
  driver.attach(opt);

  core::StreamingIngestor engine(opt);
  std::istringstream in_a(archive_a);
  std::istringstream in_b(archive_b);
  engine.add_stream("rrc00", in_a);
  engine.add_stream("rrc01", in_b);
  if (metrics_enabled) {
    // Exercise the snapshot/render paths mid-run too: they must be
    // just as invisible to the analysis output as the stage timers.
    while (engine.poll()) {
      (void)driver.snapshot();
      std::ostringstream sink;
      render_prometheus(sink);
    }
  }
  RunOutput out;
  core::IngestResult result =
      engine.finish([&out](core::UpdateRecord&&) { ++out.cleaned; });
  out.files = result.stats.files;
  out.raw_records = result.stats.raw_records;
  out.records = result.stats.records;
  std::ostringstream state;
  driver.save_state(state);
  out.state = state.str();
  return out;
}

TEST(ObsDifferential, MetricsNeverPerturbReportsOrSerializedState) {
  const std::string archive_a =
      core::archgen::ArchiveGenerator(20260807).generate(500);
  const std::string archive_b =
      core::archgen::ArchiveGenerator(20260808).generate(300);
  core::Registry registry = core::archgen::allocated_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;

  for (unsigned threads : {1u, 4u}) {
    for (std::size_t window : {std::size_t{0}, std::size_t{64}}) {
      for (bool pipelining : {false, true}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " window=" +
                     std::to_string(window) + " pipelining=" +
                     std::to_string(pipelining));
        RunOutput off = run_pipeline(archive_a, archive_b, cleaning, threads,
                                     window, pipelining, false);
        RunOutput on = run_pipeline(archive_a, archive_b, cleaning, threads,
                                    window, pipelining, true);
        EXPECT_EQ(off, on);
        EXPECT_EQ(off.files, 2u);  // the satellite: files counts sources
        EXPECT_FALSE(off.state.empty());
      }
    }
  }
}

TEST(ObsIngestStats, FilesIsZeroInitialized) {
  EXPECT_EQ(core::IngestStats{}.files, 0u);
}

}  // namespace
}  // namespace bgpcc::obs
