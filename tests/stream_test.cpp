// Unit tests: update streams and the §4 cleaning pipeline.
#include <gtest/gtest.h>

#include "core/stream.h"

namespace bgpcc::core {
namespace {

UpdateMessage announce(const std::string& prefix, const std::string& path) {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string(prefix));
  PathAttributes attrs;
  attrs.as_path = AsPath::from_string(path);
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  update.attrs = std::move(attrs);
  return update;
}

TEST(UpdateStream, ExplodesMultiPrefixMessages) {
  UpdateStream stream;
  UpdateMessage update = announce("10.0.0.0/8", "100 200");
  update.announced.push_back(Prefix::from_string("11.0.0.0/8"));
  update.withdrawn.push_back(Prefix::from_string("12.0.0.0/8"));
  stream.add_message("rrc00", Asn(100), IpAddress::from_string("192.0.2.1"),
                     Timestamp::from_unix_seconds(1), update);
  EXPECT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream.announcement_count(), 2u);
  EXPECT_EQ(stream.withdrawal_count(), 1u);
  EXPECT_EQ(stream.sessions().size(), 1u);
}

TEST(UpdateStream, SortAndMergeAreStable) {
  UpdateStream a;
  a.add_message("rrc00", Asn(1), IpAddress::from_string("192.0.2.1"),
                Timestamp::from_unix_seconds(5), announce("10.0.0.0/8", "1"));
  UpdateStream b;
  b.add_message("rrc01", Asn(2), IpAddress::from_string("192.0.2.2"),
                Timestamp::from_unix_seconds(3), announce("10.0.0.0/8", "2"));
  a.merge(b);
  a.sort_by_time();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.records()[0].session.collector, "rrc01");
  EXPECT_EQ(a.records()[1].session.collector, "rrc00");
}

TEST(Registry, AsnAllocationEpochs) {
  Registry registry;
  registry.allocate_asn(Asn(100), Timestamp::from_unix_seconds(1000));
  EXPECT_FALSE(registry.asn_allocated(Asn(100),
                                      Timestamp::from_unix_seconds(999)));
  EXPECT_TRUE(registry.asn_allocated(Asn(100),
                                     Timestamp::from_unix_seconds(1000)));
  EXPECT_FALSE(registry.asn_allocated(Asn(200),
                                      Timestamp::from_unix_seconds(2000)));
}

TEST(Registry, PrefixCoveredByAllocatedBlock) {
  Registry registry;
  registry.allocate_prefix(Prefix::from_string("84.205.0.0/16"));
  EXPECT_TRUE(registry.prefix_allocated(
      Prefix::from_string("84.205.64.0/24"), Timestamp{}));
  EXPECT_TRUE(registry.prefix_allocated(Prefix::from_string("84.205.0.0/16"),
                                        Timestamp{}));
  EXPECT_FALSE(registry.prefix_allocated(Prefix::from_string("84.0.0.0/8"),
                                         Timestamp{}));
  EXPECT_FALSE(registry.prefix_allocated(
      Prefix::from_string("85.205.64.0/24"), Timestamp{}));
}

TEST(Cleaning, DropsUnallocatedResources) {
  Registry registry;
  registry.allocate_asn(Asn(100));
  registry.allocate_asn(Asn(200));
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));

  UpdateStream stream;
  auto t = Timestamp::from_unix_seconds(1);
  auto addr = IpAddress::from_string("192.0.2.1");
  // Clean record.
  stream.add_message("rrc00", Asn(100), addr, t,
                     announce("10.1.0.0/16", "100 200"));
  // Bogus ASN on the path.
  stream.add_message("rrc00", Asn(100), addr, t,
                     announce("10.2.0.0/16", "100 666"));
  // Unallocated prefix.
  stream.add_message("rrc00", Asn(100), addr, t,
                     announce("203.0.113.0/24", "100 200"));
  CleaningOptions options;
  options.registry = &registry;
  options.fix_second_granularity = false;
  CleaningReport report = clean(stream, options);
  EXPECT_EQ(report.dropped_unallocated_asn, 1u);
  EXPECT_EQ(report.dropped_unallocated_prefix, 1u);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream.records()[0].prefix, Prefix::from_string("10.1.0.0/16"));
}

TEST(Cleaning, WithdrawalPrefixAlsoChecked) {
  Registry registry;
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));
  UpdateStream stream;
  UpdateMessage withdraw;
  withdraw.withdrawn.push_back(Prefix::from_string("203.0.113.0/24"));
  withdraw.withdrawn.push_back(Prefix::from_string("10.3.0.0/16"));
  stream.add_message("rrc00", Asn(1), IpAddress::from_string("192.0.2.1"),
                     Timestamp::from_unix_seconds(1), withdraw);
  CleaningOptions options;
  options.registry = &registry;
  options.fix_second_granularity = false;
  clean(stream, options);
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream.records()[0].prefix, Prefix::from_string("10.3.0.0/16"));
}

TEST(Cleaning, RouteServerPathRepair) {
  // §4: route servers that do not insert their own ASN get it added.
  UpdateStream stream;
  auto server_addr = IpAddress::from_string("192.0.2.9");
  stream.add_message("rrc00", Asn(6695), server_addr,
                     Timestamp::from_unix_seconds(1),
                     announce("10.0.0.0/8", "100 200"));
  // A path already starting with the server ASN is left alone.
  stream.add_message("rrc00", Asn(6695), server_addr,
                     Timestamp::from_unix_seconds(2),
                     announce("11.0.0.0/8", "6695 100 200"));
  CleaningOptions options;
  options.route_servers = {{server_addr, Asn(6695)}};
  options.fix_second_granularity = false;
  CleaningReport report = clean(stream, options);
  EXPECT_EQ(report.route_server_paths_repaired, 1u);
  EXPECT_EQ(stream.records()[0].attrs.as_path.to_string(), "6695 100 200");
  EXPECT_EQ(stream.records()[1].attrs.as_path.to_string(), "6695 100 200");
}

TEST(Cleaning, SecondGranularityRepairPreservesOrder) {
  UpdateStream stream;
  auto addr = IpAddress::from_string("192.0.2.1");
  // Three messages recorded in the same second, in arrival order.
  for (int i = 0; i < 3; ++i) {
    stream.add_message("rrc00", Asn(1), addr,
                       Timestamp::from_unix_seconds(100),
                       announce("10.0.0.0/8",
                                "100 " + std::to_string(200 + i)));
  }
  // And one with real sub-second precision: untouched.
  stream.add_message("rrc00", Asn(1), addr,
                     Timestamp::from_unix_micros(100 * 1000000 + 500),
                     announce("10.0.0.0/8", "100 999"));
  CleaningOptions options;
  CleaningReport report = clean(stream, options);
  EXPECT_EQ(report.timestamps_adjusted, 2u);
  const auto& records = stream.records();
  ASSERT_EQ(records.size(), 4u);
  // Spacing: +0, +10us, +20us (paper: "0.01ms after the last").
  EXPECT_EQ(records[0].time.unix_micros(), 100000000);
  EXPECT_EQ(records[1].time.unix_micros(), 100000010);
  EXPECT_EQ(records[2].time.unix_micros(), 100000020);
  // Order preserved: paths 200, 201, 202 in sequence.
  EXPECT_EQ(records[0].attrs.as_path.to_string(), "100 200");
  EXPECT_EQ(records[1].attrs.as_path.to_string(), "100 201");
  EXPECT_EQ(records[2].attrs.as_path.to_string(), "100 202");
  EXPECT_EQ(records[3].attrs.as_path.to_string(), "100 999");
}

TEST(Cleaning, SecondGranularityResetsAcrossSeconds) {
  UpdateStream stream;
  auto addr = IpAddress::from_string("192.0.2.1");
  stream.add_message("rrc00", Asn(1), addr, Timestamp::from_unix_seconds(100),
                     announce("10.0.0.0/8", "100 200"));
  stream.add_message("rrc00", Asn(1), addr, Timestamp::from_unix_seconds(101),
                     announce("10.0.0.0/8", "100 201"));
  CleaningOptions options;
  CleaningReport report = clean(stream, options);
  EXPECT_EQ(report.timestamps_adjusted, 0u);
}

TEST(SessionKey, ToStringAndOrdering) {
  SessionKey a{"rrc00", Asn(1), IpAddress::from_string("192.0.2.1")};
  SessionKey b{"rrc00", Asn(2), IpAddress::from_string("192.0.2.1")};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "rrc00|AS1|192.0.2.1");
}

}  // namespace
}  // namespace bgpcc::core
