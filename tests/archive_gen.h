// Seeded MRT archive generator shared by the analytics differential
// batteries (analytics_test, anomaly_beacon_pass_test): a few sessions, a
// small prefix pool (so consecutive announcements repeat and produce
// nn/nc churn), withdrawals, same-second bursts, and a clock that only
// moves forward — each session's second-granularity timestamps are
// non-decreasing in arrival order, the documented invariant under which
// inline-windowed observation equals the merged order (the shape
// chronological collector dumps have).
#pragma once

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bgp/codec.h"
#include "core/registry.h"
#include "core/stream.h"
#include "golden_fixture.h"
#include "mrt/mrt.h"

namespace bgpcc::core::archgen {

struct GenPeer {
  Asn asn;
  IpAddress ip;
  bool extended_time;
};

class ArchiveGenerator {
 public:
  explicit ArchiveGenerator(std::uint32_t seed) : rng_(seed) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      peers_.push_back(GenPeer{Asn(65001 + i), IpAddress::v4(0x0a000001u + i),
                               /*extended_time=*/i % 2 == 0});
    }
  }

  [[nodiscard]] std::string generate(int count) {
    std::ostringstream out;
    mrt::Writer writer(out);
    Timestamp now = Timestamp::from_unix_seconds(1600000000);
    for (int i = 0; i < count; ++i) {
      if (pick(10) < 3) now = now + Duration::seconds(pick(3) + 1);
      const GenPeer& peer = peers_[pick(peers_.size())];
      Timestamp when = now;
      if (peer.extended_time && pick(2) == 0) {
        when = when + Duration::micros(static_cast<std::int64_t>(pick(999)) *
                                       1000);
      }
      write_record(writer, peer, when);
    }
    return out.str();
  }

 private:
  void write_record(mrt::Writer& writer, const GenPeer& peer,
                    Timestamp when) {
    UpdateMessage update;
    if (pick(5) == 0) {
      update.withdrawn.push_back(prefix(pick(6)));
    } else {
      update.announced.push_back(prefix(pick(6)));
      PathAttributes attrs;
      std::vector<Asn> hops{peer.asn, Asn(65100 + pick(2)), Asn(65200)};
      attrs.as_path = AsPath::sequence(hops);
      attrs.next_hop = IpAddress::from_string("192.0.2.1");
      // Communities churn slowly: repeats produce nn duplicates, changes
      // produce nc — both analytics-relevant shapes.
      if (pick(3) != 0) {
        attrs.communities.add(Community::of(
            65100, static_cast<std::uint16_t>(100 + pick(4))));
        if (pick(4) == 0) {
          attrs.communities.add(Community::of(
              static_cast<std::uint16_t>(65001 + pick(4)),
              static_cast<std::uint16_t>(pick(8))));
        }
      }
      update.attrs = std::move(attrs);
    }
    core::goldenfix::write_update(writer, when, peer.asn, peer.ip, update,
                                  peer.extended_time);
  }

  Prefix prefix(std::uint32_t index) {
    return Prefix(IpAddress::v4(0x0a000000u + (index << 16)), 16);
  }

  std::uint32_t pick(std::size_t bound) {
    return static_cast<std::uint32_t>(rng_() % bound);
  }

  std::mt19937 rng_;
  std::vector<GenPeer> peers_;
};

inline Registry allocated_registry() {
  Registry registry;
  for (std::uint32_t asn = 65001; asn <= 65004; ++asn) {
    registry.allocate_asn(Asn(asn));
  }
  for (std::uint32_t asn : {65100u, 65101u, 65200u}) {
    registry.allocate_asn(Asn(asn));
  }
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));
  return registry;
}

}  // namespace bgpcc::core::archgen
