// core::WorkerPool unit + stress battery: group completion, reuse
// across many groups (the pool outlives windows and poll() calls),
// zero-worker degeneracy, nested submission (the framer → decoder
// pattern), parallel_for coverage and error propagation, and the
// failed-group short-circuit that keeps a throwing stage from burning
// the pool on doomed work. The stress cases are the TSan targets for
// the CI thread-sanitizer job.
#include "core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace bgpcc::core {
namespace {

TEST(WorkerPool, SubmitAndWaitRunsAllTasks) {
  WorkerPool pool(3);
  WorkerPool::Group group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit(group, [&ran] { ran.fetch_add(1); });
  }
  pool.wait(group);
  EXPECT_EQ(ran.load(), 64);
}

TEST(WorkerPool, ReuseAcrossManyGroups) {
  // The whole point of the pool: one construction, many waves of work —
  // no thread churn between windows or poll() calls.
  WorkerPool pool(2);
  std::atomic<int> total{0};
  for (int wave = 0; wave < 100; ++wave) {
    WorkerPool::Group group;
    for (int i = 0; i < 8; ++i) {
      pool.submit(group, [&total] { total.fetch_add(1); });
    }
    pool.wait(group);
    EXPECT_FALSE(group.failed());
  }
  EXPECT_EQ(total.load(), 800);
}

TEST(WorkerPool, GroupIsReusableAfterWait) {
  WorkerPool pool(2);
  WorkerPool::Group group;
  std::atomic<int> ran{0};
  for (int round = 0; round < 10; ++round) {
    pool.submit(group, [&ran] { ran.fetch_add(1); });
    pool.wait(group);
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(WorkerPool, ZeroWorkerPoolRunsEverythingOnTheWaiter) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  WorkerPool::Group group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit(group, [&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 0);  // nothing runs until somebody helps
  pool.wait(group);
  EXPECT_EQ(ran.load(), 10);
}

TEST(WorkerPool, NestedSubmitIntoOwnGroup) {
  // A task may enqueue more tasks into its own group (the framer
  // submits decode tasks while itself running as a pool task); wait()
  // must not return until the transitively submitted work is done.
  WorkerPool pool(2);
  WorkerPool::Group group;
  std::atomic<int> ran{0};
  pool.submit(group, [&] {
    for (int i = 0; i < 16; ++i) {
      pool.submit(group, [&ran] { ran.fetch_add(1); });
    }
  });
  pool.wait(group);
  EXPECT_EQ(ran.load(), 16);
}

TEST(WorkerPool, HelpOneDrainsQueuedWork) {
  WorkerPool pool(0);
  WorkerPool::Group group;
  std::atomic<int> ran{0};
  pool.submit(group, [&ran] { ran.fetch_add(1); });
  pool.submit(group, [&ran] { ran.fetch_add(1); });
  EXPECT_TRUE(pool.help_one());
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(pool.help_one());
  EXPECT_FALSE(pool.help_one());
  pool.wait(group);  // already complete; must not hang
  EXPECT_EQ(ran.load(), 2);
}

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kJobs = 257;  // not a multiple of the thread count
  std::vector<std::atomic<int>> hits(kJobs);
  pool.parallel_for(kJobs, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ParallelForRunsInlineWithoutWorkers) {
  WorkerPool pool(0);
  std::set<std::size_t> seen;  // single-threaded: plain set is fine
  pool.parallel_for(5, [&seen](std::size_t i) { seen.insert(i); });
  EXPECT_EQ(seen.size(), 5u);
}

TEST(WorkerPool, ParallelForPropagatesFirstError) {
  WorkerPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(32,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("job 7 died");
                        }),
      std::runtime_error);
  // The pool survives a failed parallel_for and keeps serving work.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&ran](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, ErrorSkipsQueuedGroupTasks) {
  // The regression this pool exists to fix: the old per-call spawn code
  // kept executing every remaining job after one had already thrown.
  // With one worker the queue drains strictly in order, so when task 0
  // throws, tasks 1..99 must be skipped — not one of them may run.
  WorkerPool pool(1);
  WorkerPool::Group group;
  std::atomic<int> executed{0};
  pool.submit(group, [] { throw std::runtime_error("first task fails"); });
  for (int i = 0; i < 99; ++i) {
    pool.submit(group, [&executed] { executed.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(group), std::runtime_error);
  EXPECT_EQ(executed.load(), 0);
}

TEST(WorkerPool, FailShortCircuitsAndWaitRethrows) {
  WorkerPool pool(0);
  WorkerPool::Group group;
  std::atomic<int> executed{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit(group, [&executed] { executed.fetch_add(1); });
  }
  pool.fail(group,
            std::make_exception_ptr(std::runtime_error("external failure")));
  EXPECT_TRUE(group.failed());
  EXPECT_THROW(pool.wait(group), std::runtime_error);
  EXPECT_EQ(executed.load(), 0);
  // wait() reset the group: it is reusable and healthy again.
  EXPECT_FALSE(group.failed());
  pool.submit(group, [&executed] { executed.fetch_add(1); });
  pool.wait(group);
  EXPECT_EQ(executed.load(), 1);
}

TEST(WorkerPool, IndependentGroupsDoNotShareFailure) {
  WorkerPool pool(2);
  WorkerPool::Group bad;
  WorkerPool::Group good;
  std::atomic<int> ran{0};
  pool.submit(bad, [] { throw std::runtime_error("bad group"); });
  for (int i = 0; i < 32; ++i) {
    pool.submit(good, [&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(bad), std::runtime_error);
  pool.wait(good);
  EXPECT_EQ(ran.load(), 32);
}

TEST(WorkerPool, ConcurrentGroupsStress) {
  // TSan target: many short groups and parallel_for waves interleaved
  // on one pool, exercising the queue, the helping waiters, and the
  // group completion protocol under real contention.
  WorkerPool pool(4);
  std::atomic<long> total{0};
  for (int wave = 0; wave < 200; ++wave) {
    WorkerPool::Group a;
    WorkerPool::Group b;
    for (int i = 0; i < 4; ++i) {
      pool.submit(a, [&total] { total.fetch_add(1); });
      pool.submit(b, [&total] { total.fetch_add(1); });
    }
    pool.parallel_for(4, [&total](std::size_t) { total.fetch_add(1); });
    pool.wait(a);
    pool.wait(b);
  }
  EXPECT_EQ(total.load(), 200L * (4 + 4 + 4));
}

TEST(WorkerPool, ErrorStress) {
  // TSan target for the failure path: half the waves throw, and the
  // skip/short-circuit machinery must stay race-free while healthy
  // waves share the same pool.
  WorkerPool pool(4);
  std::atomic<long> total{0};
  for (int wave = 0; wave < 100; ++wave) {
    WorkerPool::Group group;
    const bool poison = (wave % 2) == 0;
    for (int i = 0; i < 8; ++i) {
      if (poison && i == 0) {
        pool.submit(group, [] { throw std::runtime_error("poisoned wave"); });
      } else {
        pool.submit(group, [&total, &group] {
          if (!group.failed()) total.fetch_add(1);
        });
      }
    }
    if (poison) {
      EXPECT_THROW(pool.wait(group), std::runtime_error);
    } else {
      pool.wait(group);
    }
  }
  EXPECT_GE(total.load(), 100L * 7 / 2);  // every healthy wave in full
}

TEST(WorkerPool, DestructionDrainsOutstandingZeroWorkerQueue) {
  // A zero-worker pool destroyed with queued-but-unwaited tasks must
  // still complete them (the dtor helps), not leak the std::functions.
  std::atomic<int> ran{0};
  {
    WorkerPool pool(0);
    WorkerPool::Group group;
    pool.submit(group, [&ran] { ran.fetch_add(1); });
    pool.wait(group);
  }
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace bgpcc::core
