// Unit tests: communities and community sets.
#include <gtest/gtest.h>

#include "bgp/community.h"
#include "netbase/error.h"

namespace bgpcc {
namespace {

TEST(Community, OfAndAccessors) {
  Community c = Community::of(3356, 2010);
  EXPECT_EQ(c.asn16(), 3356);
  EXPECT_EQ(c.value16(), 2010);
  EXPECT_EQ(c.raw(), (3356u << 16) | 2010u);
}

TEST(Community, FromString) {
  EXPECT_EQ(Community::from_string("3356:2010"), Community::of(3356, 2010));
  EXPECT_EQ(Community::from_string("4294967041").raw(), 0xffffff01u);
}

TEST(Community, FromStringErrors) {
  EXPECT_THROW((void)Community::from_string("65536:1"), ParseError);
  EXPECT_THROW((void)Community::from_string("1:65536"), ParseError);
  EXPECT_THROW((void)Community::from_string("a:b"), ParseError);
  EXPECT_THROW((void)Community::from_string(""), ParseError);
  EXPECT_THROW((void)Community::from_string("1:2:3"), ParseError);
}

TEST(Community, ToString) {
  EXPECT_EQ(Community::of(65000, 300).to_string(), "65000:300");
}

TEST(Community, WellKnown) {
  EXPECT_TRUE(Community::no_export().is_well_known());
  EXPECT_TRUE(Community::no_advertise().is_well_known());
  EXPECT_TRUE(Community::blackhole().is_well_known());
  EXPECT_FALSE(Community::of(3356, 1).is_well_known());
}

TEST(CommunitySet, SortedUnique) {
  CommunitySet set;
  EXPECT_TRUE(set.add(Community::of(2, 2)));
  EXPECT_TRUE(set.add(Community::of(1, 1)));
  EXPECT_FALSE(set.add(Community::of(2, 2)));
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.items()[0], Community::of(1, 1));
  EXPECT_EQ(set.items()[1], Community::of(2, 2));
}

TEST(CommunitySet, EqualityIsOrderIndependent) {
  CommunitySet a{Community::of(1, 1), Community::of(2, 2)};
  CommunitySet b{Community::of(2, 2), Community::of(1, 1)};
  EXPECT_EQ(a, b);
}

TEST(CommunitySet, Remove) {
  CommunitySet set{Community::of(1, 1), Community::of(2, 2)};
  EXPECT_TRUE(set.remove(Community::of(1, 1)));
  EXPECT_FALSE(set.remove(Community::of(1, 1)));
  EXPECT_EQ(set.size(), 1u);
}

TEST(CommunitySet, RemoveAsnNamespace) {
  CommunitySet set{Community::of(3356, 1), Community::of(3356, 9999),
                   Community::of(174, 5), Community::of(3357, 1)};
  EXPECT_EQ(set.remove_asn(3356), 2u);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Community::of(174, 5)));
  EXPECT_TRUE(set.contains(Community::of(3357, 1)));
}

TEST(CommunitySet, Contains) {
  CommunitySet set{Community::of(5, 5)};
  EXPECT_TRUE(set.contains(Community::of(5, 5)));
  EXPECT_FALSE(set.contains(Community::of(5, 6)));
}

TEST(CommunitySet, ToString) {
  CommunitySet set{Community::of(2, 2), Community::of(1, 1)};
  EXPECT_EQ(set.to_string(), "1:1 2:2");
  EXPECT_EQ(CommunitySet{}.to_string(), "");
}

TEST(CommunitySet, OrderingForMapKeys) {
  CommunitySet a{Community::of(1, 1)};
  CommunitySet b{Community::of(1, 2)};
  EXPECT_LT(a, b);
  CommunitySet c{Community::of(1, 1), Community::of(2, 2)};
  EXPECT_LT(a, c);  // prefix of a longer set sorts first
}

TEST(LargeCommunity, RoundTrip) {
  LargeCommunity lc = LargeCommunity::from_string("64500:1:228");
  EXPECT_EQ(lc.global_admin, 64500u);
  EXPECT_EQ(lc.data1, 1u);
  EXPECT_EQ(lc.data2, 228u);
  EXPECT_EQ(lc.to_string(), "64500:1:228");
}

TEST(LargeCommunity, Errors) {
  EXPECT_THROW((void)LargeCommunity::from_string("1:2"), ParseError);
  EXPECT_THROW((void)LargeCommunity::from_string("x:y:z"), ParseError);
  EXPECT_THROW((void)LargeCommunity::from_string("4294967296:0:0"), ParseError);
}

TEST(LargeCommunitySet, Basics) {
  LargeCommunitySet set;
  EXPECT_TRUE(set.add(LargeCommunity{1, 2, 3}));
  EXPECT_FALSE(set.add(LargeCommunity{1, 2, 3}));
  EXPECT_TRUE(set.contains(LargeCommunity{1, 2, 3}));
  EXPECT_TRUE(set.remove(LargeCommunity{1, 2, 3}));
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace bgpcc
