// Integration tests: the synthetic beacon internet reproduces the §6
// phenomena end-to-end (community exploration, cleaning-induced nn,
// withdrawal-dominated attribute revelation).
#include <gtest/gtest.h>

#include "core/beacon.h"
#include "core/tomography.h"
#include "synth/beacon_internet.h"

namespace bgpcc::synth {
namespace {

// One shared small-day simulation: building it is the expensive part, so
// run it once and let all tests inspect the result.
class BeaconDay : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    BeaconOptions options;
    options.transit_ingresses = 5;
    options.peers_per_collector = 8;
    options.collector_count = 2;
    options.beacon_count = 2;
    internet_ = new BeaconInternet(options);
    internet_->run_day();
    stream_ = new core::UpdateStream(internet_->stream());
  }
  static void TearDownTestSuite() {
    delete stream_;
    stream_ = nullptr;
    delete internet_;
    internet_ = nullptr;
  }

  static BeaconInternet* internet_;
  static core::UpdateStream* stream_;
};

BeaconInternet* BeaconDay::internet_ = nullptr;
core::UpdateStream* BeaconDay::stream_ = nullptr;

TEST_F(BeaconDay, ProducesTrafficOnAllCollectors) {
  ASSERT_GT(stream_->size(), 100u);
  for (const std::string& name : internet_->collector_names()) {
    EXPECT_GT(internet_->collector_stream(name).size(), 0u) << name;
  }
}

TEST_F(BeaconDay, AnnouncementsOutnumberWithdrawals) {
  // Paper: 307,984 announcements vs 56,640 withdrawals (~5.4:1).
  EXPECT_GT(stream_->announcement_count(),
            2 * stream_->withdrawal_count());
  EXPECT_GT(stream_->withdrawal_count(), 0u);
}

TEST_F(BeaconDay, CommunityExplorationEmerges) {
  core::BeaconSchedule schedule;
  auto events = core::find_community_exploration(*stream_, schedule);
  ASSERT_FALSE(events.empty())
      << "staggered withdrawals through the multi-ingress transit must "
         "produce nc runs on unchanged AS paths";
  // The exploration happens on the canonical T path: peer, 3356, 174, origin.
  bool t_path_seen = false;
  for (const auto& event : events) {
    auto hops = event.as_path.flatten();
    if (hops.size() == 4 && hops[1] == Asn(BeaconInternet::kAsnT) &&
        hops[2] == Asn(BeaconInternet::kAsnU1)) {
      t_path_seen = true;
      EXPECT_GE(event.distinct_attributes, 2);
    }
  }
  EXPECT_TRUE(t_path_seen);
}

TEST_F(BeaconDay, NcAnnouncementsComeFromPropagatingPeers) {
  core::TypeCounts counts = core::classify_stream(*stream_);
  EXPECT_GT(counts.count(core::AnnouncementType::kPc), 0u);
  EXPECT_GT(counts.count(core::AnnouncementType::kNc), 0u);
  EXPECT_GT(counts.count(core::AnnouncementType::kNn), 0u);
  // Path-change types dominate in beacon data (paper: pc+pn ~ 75%).
  EXPECT_GT(counts.count(core::AnnouncementType::kPc) +
                counts.count(core::AnnouncementType::kPn),
            counts.count(core::AnnouncementType::kNc));
}

TEST_F(BeaconDay, CleaningPeersEmitNoCommunities) {
  for (const core::UpdateRecord& record : stream_->records()) {
    if (!record.announcement) continue;
    for (const PeerInfo& peer : internet_->peers()) {
      if (record.session.peer_asn != peer.asn) continue;
      if (peer.hygiene == PeerHygiene::kCleanEgress ||
          peer.hygiene == PeerHygiene::kCleanIngress) {
        EXPECT_TRUE(record.attrs.communities.empty())
            << peer.name << " must clean communities";
      }
    }
  }
}

TEST_F(BeaconDay, WithdrawalPhasesRevealMostAttributes) {
  core::BeaconSchedule schedule;
  core::RevealedStats stats = core::analyze_revealed(*stream_, schedule);
  ASSERT_GT(stats.total_unique, 0u);
  // Paper: ~62% withdrawal-exclusive, 17% announce, <1% outside.
  EXPECT_GT(stats.withdrawal_ratio(), 0.35);
  EXPECT_GT(stats.withdrawal_only, stats.announce_only);
}

TEST_F(BeaconDay, AllTrafficInsideBeaconRange) {
  Prefix range(IpAddress::v4(84, 205, 0, 0), 16);
  for (const core::UpdateRecord& record : stream_->records()) {
    EXPECT_TRUE(range.contains(record.prefix));
  }
}

TEST_F(BeaconDay, RegistryCoversEverything) {
  core::Registry registry = internet_->make_registry();
  core::UpdateStream copy = *stream_;
  core::CleaningOptions options;
  options.registry = &registry;
  options.fix_second_granularity = false;
  core::CleaningReport report = core::clean(copy, options);
  EXPECT_EQ(report.dropped_unallocated_asn, 0u);
  EXPECT_EQ(report.dropped_unallocated_prefix, 0u);
  EXPECT_EQ(copy.size(), stream_->size());
}

TEST_F(BeaconDay, TomographyRecoversGroundTruth) {
  auto evidence = core::infer_community_behavior(*stream_);
  // The big transit must be classified as a tagger.
  const core::AsEvidence* transit = nullptr;
  for (const auto& e : evidence) {
    if (e.asn == Asn(BeaconInternet::kAsnT)) transit = &e;
  }
  ASSERT_NE(transit, nullptr);
  EXPECT_EQ(transit->classification, core::CommunityBehavior::kTagger);

  // Cleaning peers with enough announcements classify as cleaners.
  int cleaners_checked = 0;
  for (const PeerInfo& peer : internet_->peers()) {
    if (peer.hygiene != PeerHygiene::kCleanEgress &&
        peer.hygiene != PeerHygiene::kCleanIngress) {
      continue;
    }
    for (const auto& e : evidence) {
      if (e.asn != peer.asn || e.as_peer < 10) continue;
      EXPECT_EQ(e.classification, core::CommunityBehavior::kCleaner)
          << peer.name;
      ++cleaners_checked;
    }
  }
  EXPECT_GT(cleaners_checked, 0);
}

TEST_F(BeaconDay, DeterministicGivenSeed) {
  BeaconOptions options;
  options.transit_ingresses = 3;
  options.peers_per_collector = 3;
  options.collector_count = 1;
  options.beacon_count = 1;
  auto run = [&options] {
    BeaconInternet net(options);
    net.run_day();
    return net.stream().size();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace bgpcc::synth
